"""Tests for snapshot diffing and version manifests."""

import pytest

from repro.errors import VersionNotPublishedError
from repro.tools.diff import ChangedRange, diff_versions, version_manifest

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


class TestVersionManifest:
    def test_manifest_lists_every_page_in_order(self, store, cluster, blob_id):
        version = store.append(blob_id, make_payload(5 * PAGE))
        store.sync(blob_id, version)
        manifest = version_manifest(cluster, blob_id, version)
        assert [d.page_index for d in manifest] == [0, 1, 2, 3, 4]
        assert len({d.page_id for d in manifest}) == 5

    def test_manifest_of_empty_snapshot(self, store, cluster, blob_id):
        assert version_manifest(cluster, blob_id, 0) == []

    def test_manifest_requires_published_version(self, store, cluster, blob_id):
        with pytest.raises(VersionNotPublishedError):
            version_manifest(cluster, blob_id, 9)

    def test_manifests_share_unmodified_pages(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(4 * PAGE))
        version = store.write(blob_id, make_payload(PAGE, seed=2), 2 * PAGE)
        store.sync(blob_id, version)
        first = {d.page_index: d.page_id for d in version_manifest(cluster, blob_id, 1)}
        second = {
            d.page_index: d.page_id for d in version_manifest(cluster, blob_id, 2)
        }
        assert first[0] == second[0] and first[1] == second[1] and first[3] == second[3]
        assert first[2] != second[2]


class TestDiffVersions:
    def test_identical_versions_have_no_diff(self, store, cluster, blob_id):
        version = store.append(blob_id, make_payload(6 * PAGE))
        store.sync(blob_id, version)
        assert diff_versions(cluster, blob_id, version, version) == []

    def test_overwrite_produces_modified_range(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(8 * PAGE))
        version = store.write(blob_id, make_payload(2 * PAGE, seed=3), 3 * PAGE)
        store.sync(blob_id, version)
        assert diff_versions(cluster, blob_id, 1, version) == [
            ChangedRange(3, 2, "modified")
        ]

    def test_append_produces_added_range(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(4 * PAGE))
        version = store.append(blob_id, make_payload(3 * PAGE, seed=2))
        store.sync(blob_id, version)
        assert diff_versions(cluster, blob_id, 1, version) == [
            ChangedRange(4, 3, "added")
        ]

    def test_reverse_diff_reports_removed_pages(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(4 * PAGE))
        version = store.append(blob_id, make_payload(2 * PAGE, seed=2))
        store.sync(blob_id, version)
        assert diff_versions(cluster, blob_id, version, 1) == [
            ChangedRange(4, 2, "removed")
        ]

    def test_unaligned_overwrite_flags_boundary_pages(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(4 * PAGE))
        version = store.write(blob_id, b"Z" * 10, PAGE + 5)
        store.sync(blob_id, version)
        assert diff_versions(cluster, blob_id, 1, version) == [
            ChangedRange(1, 1, "modified")
        ]

    def test_disjoint_changes_produce_separate_runs(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(16 * PAGE))
        store.write(blob_id, make_payload(PAGE, seed=5), 0)
        version = store.write(blob_id, make_payload(2 * PAGE, seed=6), 10 * PAGE)
        store.sync(blob_id, version)
        diff = diff_versions(cluster, blob_id, 1, version)
        assert diff == [ChangedRange(0, 1, "modified"), ChangedRange(10, 2, "modified")]

    def test_diff_across_appends_and_overwrites(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(4 * PAGE))
        store.write(blob_id, make_payload(PAGE, seed=7), PAGE)
        version = store.append(blob_id, make_payload(2 * PAGE, seed=8))
        store.sync(blob_id, version)
        diff = diff_versions(cluster, blob_id, 1, version)
        assert ChangedRange(1, 1, "modified") in diff
        assert ChangedRange(4, 2, "added") in diff
        assert len(diff) == 2

    def test_diff_between_branch_and_origin(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(6 * PAGE))
        store.sync(blob_id, 1)
        branch = store.branch(blob_id, 1)
        version = store.write(branch, make_payload(PAGE, seed=9), 4 * PAGE)
        store.sync(branch, version)
        # Diff within the branch blob: its version 1 is shared with the origin.
        assert diff_versions(cluster, branch, 1, version) == [
            ChangedRange(4, 1, "modified")
        ]

    def test_byte_range_helper(self):
        changed = ChangedRange(3, 2, "modified")
        assert changed.byte_range(PAGE) == (3 * PAGE, 2 * PAGE)

    def test_diff_requires_published_versions(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(PAGE))
        store.sync(blob_id, 1)
        with pytest.raises(VersionNotPublishedError):
            diff_versions(cluster, blob_id, 1, 5)

    def test_diff_against_empty_snapshot(self, store, cluster, blob_id):
        version = store.append(blob_id, make_payload(3 * PAGE))
        store.sync(blob_id, version)
        assert diff_versions(cluster, blob_id, 0, version) == [
            ChangedRange(0, 3, "added")
        ]
