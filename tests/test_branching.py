"""Integration tests for BRANCH: cheap blob duplication and divergence."""

import pytest

from repro.errors import VersionNotPublishedError

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


class TestBranchBasics:
    def test_branch_shares_history_up_to_the_branch_point(self, store, blob_id):
        payload = make_payload(6 * PAGE, seed=1)
        store.append(blob_id, payload)
        version = store.write(blob_id, make_payload(PAGE, seed=2), PAGE)
        store.sync(blob_id, version)
        branch = store.branch(blob_id, version)
        for v in (1, 2):
            size = store.get_size(branch, v)
            assert size == store.get_size(blob_id, v)
            assert store.read(branch, v, 0, size) == store.read(blob_id, v, 0, size)

    def test_branch_of_unpublished_version_fails(self, store, blob_id):
        with pytest.raises(VersionNotPublishedError):
            store.branch(blob_id, 4)

    def test_branch_of_empty_snapshot(self, store, blob_id):
        branch = store.branch(blob_id, 0)
        version = store.append(branch, b"fresh start")
        store.sync(branch, version)
        assert store.read(branch, version, 0, 11) == b"fresh start"
        assert store.get_size(blob_id, 0) == 0

    def test_branches_do_not_see_each_others_updates(self, store, blob_id):
        base = make_payload(4 * PAGE, seed=3)
        store.append(blob_id, base)
        store.sync(blob_id, 1)
        branch_a = store.branch(blob_id, 1)
        branch_b = store.branch(blob_id, 1)
        va = store.write(branch_a, b"A" * PAGE, 0)
        vb = store.write(branch_b, b"B" * PAGE, PAGE)
        store.sync(branch_a, va)
        store.sync(branch_b, vb)
        a_data = store.read(branch_a, va, 0, 4 * PAGE)
        b_data = store.read(branch_b, vb, 0, 4 * PAGE)
        original = store.read(blob_id, 1, 0, 4 * PAGE)
        assert a_data == b"A" * PAGE + base[PAGE:]
        assert b_data == base[:PAGE] + b"B" * PAGE + base[2 * PAGE:]
        assert original == base

    def test_original_blob_keeps_evolving_after_a_branch(self, store, blob_id):
        store.append(blob_id, make_payload(2 * PAGE, seed=4))
        store.sync(blob_id, 1)
        branch = store.branch(blob_id, 1)
        v_orig = store.append(blob_id, make_payload(PAGE, seed=5))
        store.sync(blob_id, v_orig)
        assert store.get_size(blob_id, v_orig) == 3 * PAGE
        assert store.get_size(branch, store.get_recent(branch)) == 2 * PAGE


class TestBranchStorageSharing:
    def test_branching_consumes_no_extra_pages(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(8 * PAGE))
        store.sync(blob_id, 1)
        pages_before = cluster.stored_page_count()
        nodes_before = cluster.metadata_node_count()
        store.branch(blob_id, 1)
        assert cluster.stored_page_count() == pages_before
        assert cluster.metadata_node_count() == nodes_before

    def test_branch_updates_only_add_their_own_pages(self, store, cluster, blob_id):
        store.append(blob_id, make_payload(8 * PAGE))
        store.sync(blob_id, 1)
        pages_before = cluster.stored_page_count()
        branch = store.branch(blob_id, 1)
        version = store.write(branch, make_payload(2 * PAGE, seed=6), 2 * PAGE)
        store.sync(branch, version)
        assert cluster.stored_page_count() == pages_before + 2


class TestNestedBranches:
    def test_branch_of_a_branch_reads_through_the_whole_lineage(self, store, blob_id):
        store.append(blob_id, make_payload(4 * PAGE, seed=7))
        store.sync(blob_id, 1)
        child = store.branch(blob_id, 1)
        v2 = store.write(child, b"C" * PAGE, 0)
        store.sync(child, v2)
        grandchild = store.branch(child, v2)
        v3 = store.append(grandchild, b"G" * PAGE)
        store.sync(grandchild, v3)
        data = store.read(grandchild, v3, 0, 5 * PAGE)
        base = make_payload(4 * PAGE, seed=7)
        assert data == b"C" * PAGE + base[PAGE:] + b"G" * PAGE
        # Versions 1 and 2 are still served through the ancestors' metadata.
        assert store.read(grandchild, 1, 0, 4 * PAGE) == base

    def test_deep_branch_chain(self, store, blob_id):
        expected = bytearray(make_payload(2 * PAGE, seed=8))
        store.append(blob_id, bytes(expected))
        store.sync(blob_id, 1)
        current = blob_id
        for depth in range(5):
            current = store.branch(current, store.get_recent(current))
            patch = bytes([depth + 65]) * 32
            offset = depth * 32
            version = store.write(current, patch, offset)
            store.sync(current, version)
            expected[offset:offset + 32] = patch
        recent = store.get_recent(current)
        assert store.read(current, recent, 0, len(expected)) == bytes(
            expected
        )
