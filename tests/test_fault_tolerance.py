"""Data-path fault tolerance: replication, failover, retry, health, repair.

Covers the extensions DESIGN.md documents for the data leg: page
replication (`page_replication`), degraded reads with replica failover,
the deterministic `RetryPolicy`, the `ProviderHealth` suspicion registry,
the `RepairService`, and how all of it composes with garbage collection
under provider churn.
"""

import random

import pytest

from repro import BlobStore, Cluster
from repro.config import BlobSeerConfig
from repro.errors import (
    ConfigurationError,
    IntegrityError,
    MetadataNotFoundError,
    PageNotFoundError,
    ProviderUnavailableError,
    is_retryable,
)
from repro.fault import ProviderHealth, RepairService, RetryPolicy
from repro.metadata.node import LeafNode
from repro.metadata.serialization import (
    LEAF_TAG,
    REPLICATED_LEAF_TAG,
    decode_node,
    encode_node,
)
from repro.providers.data_provider import DataProvider
from repro.providers.provider_manager import ProviderManager
from repro.tools.gc import collect_garbage

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


def replicated_data_cluster(replicas: int = 2, providers: int = 6) -> Cluster:
    return Cluster(
        BlobSeerConfig(
            page_size=PAGE,
            num_data_providers=providers,
            num_metadata_providers=providers,
            page_replication=replicas,
            verify_checksums=True,
        )
    )


def uncached_store(cluster: Cluster) -> BlobStore:
    """Reads must hit the providers, not a cache, to exercise failover."""
    return BlobStore(cluster, cache_metadata=False, cache_pages=False)


def busiest_provider(cluster: Cluster) -> str:
    return max(
        cluster.provider_manager.providers(),
        key=lambda provider: (provider.page_count(), provider.provider_id),
    ).provider_id


class TestRetryableClassification:
    def test_provider_unavailable_is_retryable(self):
        assert is_retryable(ProviderUnavailableError("data-0000"))

    def test_durable_failures_are_not_retryable(self):
        assert not is_retryable(MetadataNotFoundError("key"))
        assert not is_retryable(PageNotFoundError("page"))
        assert not is_retryable(IntegrityError("page-1", "aa", "bb"))
        assert not is_retryable(ValueError("not even a BlobSeerError"))


class TestRetryPolicy:
    def test_default_is_noop_and_raises_immediately(self):
        sleeps = []
        policy = RetryPolicy(sleep=sleeps.append)
        assert policy.is_noop
        calls = []

        def flaky():
            calls.append(1)
            raise ProviderUnavailableError("data-0000")

        with pytest.raises(ProviderUnavailableError):
            policy.run(flaky)
        assert len(calls) == 1
        assert sleeps == []

    def test_exponential_backoff_is_deterministic_without_jitter(self):
        sleeps = []
        policy = RetryPolicy(
            attempts=4,
            backoff_base=0.1,
            backoff_max=0.3,
            jitter=0.0,
            sleep=sleeps.append,
        )
        attempts = []

        def succeeds_third_time():
            attempts.append(1)
            if len(attempts) < 3:
                raise ProviderUnavailableError("data-0000")
            return "ok"

        assert policy.run(succeeds_third_time) == "ok"
        assert sleeps == pytest.approx([0.1, 0.2])
        # The cap kicks in at retry 3: 0.1 * 2**2 = 0.4 -> 0.3.
        assert policy.delay(3) == pytest.approx(0.3)

    def test_jitter_is_seeded_and_bounded(self):
        make = lambda: RetryPolicy(  # noqa: E731
            attempts=2,
            backoff_base=0.2,
            backoff_max=1.0,
            jitter=0.5,
            sleep=lambda _s: None,
            rng=random.Random(2009),
        )
        delays_a = [make().delay(1) for _ in range(1)]
        delays_b = [make().delay(1) for _ in range(1)]
        assert delays_a == delays_b  # same seed, same jitter
        for _ in range(50):
            delay = make().delay(1)
            assert 0.1 <= delay <= 0.2  # within [base*(1-jitter), base]

    def test_non_retryable_errors_pass_through_unretried(self):
        calls = []
        policy = RetryPolicy(attempts=5, sleep=lambda _s: None)

        def broken():
            calls.append(1)
            raise PageNotFoundError("page-1")

        with pytest.raises(PageNotFoundError):
            policy.run(broken)
        assert len(calls) == 1

    def test_budget_exhaustion_reraises_and_reports_failures(self):
        failures = []
        policy = RetryPolicy(attempts=3, jitter=0.0, sleep=lambda _s: None)

        def always_down():
            raise ProviderUnavailableError("data-0000")

        with pytest.raises(ProviderUnavailableError):
            policy.run(
                always_down,
                on_failure=lambda error, attempt: failures.append(attempt),
            )
        assert failures == [1, 2]  # the final failure is raised, not hooked

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=0.5, backoff_max=0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)

    def test_retry_recovers_a_provider_that_revives(self):
        """End-to-end through the provider manager's batch dispatch."""
        provider = DataProvider("data-0000", verify_checksums=True)
        provider.store_page("page-1", b"x" * PAGE)

        def revive_on_sleep(_seconds):
            provider.revive()

        manager = ProviderManager(
            retry_policy=RetryPolicy(attempts=2, sleep=revive_on_sleep)
        )
        manager.register(provider)
        provider.kill()
        payloads, trips = manager.multi_fetch([("data-0000", "page-1", 0, PAGE)])
        assert payloads == [b"x" * PAGE]
        assert trips == 1


class TestProviderHealth:
    def test_suspicion_threshold_and_clear(self):
        health = ProviderHealth(suspect_after=3)
        assert not health.record_failure("data-0000")
        assert not health.record_failure("data-0000")
        assert health.record_failure("data-0000")
        assert health.is_suspect("data-0000")
        assert health.suspects() == frozenset({"data-0000"})
        health.record_success("data-0000")
        assert not health.is_suspect("data-0000")
        assert health.consecutive_failures("data-0000") == 0

    def test_prefer_healthy_filters_unless_it_would_empty_the_pool(self):
        health = ProviderHealth(suspect_after=1)
        health.record_failure("data-0001")
        assert health.prefer_healthy(["data-0000", "data-0001"]) == ["data-0000"]
        # A suspect is still better than failing the operation outright.
        assert health.prefer_healthy(["data-0001"]) == ["data-0001"]

    def test_probe_clears_suspicion_of_revived_providers(self):
        health = ProviderHealth(suspect_after=1)
        provider = DataProvider("data-0000")
        provider.kill()
        health.record_failure("data-0000")
        assert health.probe([provider]) == []
        provider.revive()
        assert health.probe([provider]) == ["data-0000"]
        assert not health.is_suspect("data-0000")

    def test_allocation_steers_around_suspects(self):
        cluster = replicated_data_cluster(replicas=1, providers=4)
        suspect = cluster.provider_manager.allocatable_ids()[0]
        for _ in range(cluster.config.suspect_after):
            cluster.provider_health.record_failure(suspect)
        chosen = cluster.provider_manager.allocate(8)
        assert suspect not in chosen


class TestConfigReplicationKnobs:
    def test_split_knobs_default_to_one(self):
        config = BlobSeerConfig()
        assert config.metadata_replication == 1
        assert config.page_replication == 1
        assert config.replication == 1  # deprecated alias, resolved

    def test_deprecated_alias_warns_and_sets_metadata_replication(self):
        with pytest.warns(DeprecationWarning, match="metadata_replication"):
            config = BlobSeerConfig(
                num_data_providers=6, num_metadata_providers=6, replication=3
            )
        # Semantics unchanged by the deprecation: the alias still resolves
        # into the split knobs exactly as before.
        assert config.metadata_replication == 3
        assert config.replication == 3
        assert config.page_replication == 1  # pages were never replicated

    def test_alias_conflict_is_rejected(self):
        with pytest.warns(DeprecationWarning), pytest.raises(ConfigurationError):
            BlobSeerConfig(replication=2, metadata_replication=3)

    def test_alias_agreement_is_accepted(self):
        with pytest.warns(DeprecationWarning):
            config = BlobSeerConfig(replication=2, metadata_replication=2)
        assert config.metadata_replication == 2

    def test_metadata_replication_bounded_by_metadata_providers(self):
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(num_metadata_providers=2, metadata_replication=3)

    def test_page_replication_bounded_by_data_providers(self):
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(num_data_providers=2, page_replication=3)

    def test_legacy_alias_keeps_its_historical_envelope(self):
        # The old combined knob validated against the data-provider count
        # and the DHT clamped it to the bucket count; both stay true so old
        # configs construct unchanged (modulo the deprecation warning).
        with pytest.warns(DeprecationWarning), pytest.raises(ConfigurationError):
            BlobSeerConfig(num_data_providers=2, replication=3)
        with pytest.warns(DeprecationWarning):
            clamped = BlobSeerConfig(
                num_data_providers=6, num_metadata_providers=2, replication=3
            )
        assert clamped.metadata_replication == 2

    def test_retry_knobs_are_validated(self):
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(retry_attempts=0)
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(retry_jitter=2.0)
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(retry_backoff_base=1.0, retry_backoff_max=0.1)
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(suspect_after=0)


class TestLeafSerializationCompatibility:
    def test_single_replica_leaf_keeps_the_legacy_wire_format(self):
        leaf = LeafNode(page_id="page-1", provider_id="data-0000", length=64)
        encoded = encode_node(leaf)
        assert encoded[:1] == LEAF_TAG
        # Byte-for-byte the pre-replication layout: u16 len + page id,
        # u16 len + provider id, u32 length.
        expected = (
            LEAF_TAG
            + (6).to_bytes(2, "big") + b"page-1"
            + (9).to_bytes(2, "big") + b"data-0000"
            + (64).to_bytes(4, "big")
        )
        assert encoded == expected
        assert decode_node(encoded) == leaf
        assert decode_node(encoded).provider_ids == ("data-0000",)

    def test_replicated_leaf_round_trips_with_replica_order(self):
        leaf = LeafNode(
            page_id="page-1",
            provider_id="data-0002",
            length=40,
            provider_ids=("data-0002", "data-0000", "data-0005"),
        )
        encoded = encode_node(leaf)
        assert encoded[:1] == REPLICATED_LEAF_TAG
        decoded = decode_node(encoded)
        assert decoded == leaf
        assert decoded.provider_ids == ("data-0002", "data-0000", "data-0005")
        assert decoded.provider_id == "data-0002"

    def test_leaf_rejects_inconsistent_replica_sets(self):
        with pytest.raises(ValueError):
            LeafNode(
                page_id="p", provider_id="a", length=1, provider_ids=("b", "a")
            )
        with pytest.raises(ValueError):
            LeafNode(
                page_id="p", provider_id="a", length=1, provider_ids=("a", "a")
            )


class TestAllocateReplicas:
    def test_replica_sets_are_distinct_with_primary_first(self):
        cluster = replicated_data_cluster(replicas=3, providers=6)
        sets = cluster.provider_manager.allocate_replicas(8, replicas=3)
        assert len(sets) == 8
        for replica_set in sets:
            assert len(replica_set) == 3
            assert len(set(replica_set)) == 3

    def test_degrades_to_available_providers(self):
        cluster = replicated_data_cluster(replicas=2, providers=3)
        for provider_id in list(cluster.provider_manager.allocatable_ids())[:2]:
            cluster.kill_data_provider(provider_id)
        sets = cluster.provider_manager.allocate_replicas(4, replicas=2)
        assert all(len(replica_set) == 1 for replica_set in sets)

    def test_single_replica_sets_match_plain_allocation_shape(self):
        cluster = replicated_data_cluster(replicas=1, providers=4)
        sets = cluster.provider_manager.allocate_replicas(6, replicas=1)
        assert all(len(replica_set) == 1 for replica_set in sets)


class TestReplicatedReadFailover:
    def test_any_single_provider_kill_leaves_every_read_servable(self):
        cluster = replicated_data_cluster(replicas=2, providers=6)
        store = uncached_store(cluster)
        blob_id = store.create()
        payload = make_payload(24 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        for provider_id in list(cluster.provider_manager.provider_ids()):
            cluster.kill_data_provider(provider_id)
            data, stats = store.read_ex(blob_id, version, 0, len(payload))
            assert data == payload  # degraded, never wrong and never failing
            cluster.revive_data_provider(provider_id)

    def test_degraded_reads_report_failovers(self):
        cluster = replicated_data_cluster(replicas=2, providers=6)
        store = uncached_store(cluster)
        blob_id = store.create()
        payload = make_payload(24 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)

        _, healthy = store.read_ex(blob_id, version, 0, len(payload))
        assert healthy.failovers == 0
        assert healthy.degraded == 0

        cluster.kill_data_provider(busiest_provider(cluster))
        data, stats = store.read_ex(blob_id, version, 0, len(payload))
        assert data == payload
        assert stats.failovers > 0
        assert stats.degraded > 0

    def test_single_replica_reads_still_fail_on_dead_provider(self):
        # page_replication=1 keeps the paper's semantics: the page has one
        # home and a dead home means an unavailable (retryable) read.
        cluster = replicated_data_cluster(replicas=1, providers=4)
        store = uncached_store(cluster)
        blob_id = store.create()
        payload = make_payload(16 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        cluster.kill_data_provider(busiest_provider(cluster))
        with pytest.raises(ProviderUnavailableError):
            store.read_ex(blob_id, version, 0, len(payload))

    def test_double_failure_beyond_replication_surfaces(self):
        cluster = replicated_data_cluster(replicas=2, providers=4)
        store = uncached_store(cluster)
        blob_id = store.create()
        payload = make_payload(16 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        for provider_id in list(cluster.provider_manager.provider_ids()):
            cluster.kill_data_provider(provider_id)
        with pytest.raises(ProviderUnavailableError):
            store.read_ex(blob_id, version, 0, len(payload))


class TestReplicatedWrites:
    def test_writes_replicate_every_page(self):
        cluster = replicated_data_cluster(replicas=2, providers=6)
        store = uncached_store(cluster)
        blob_id = store.create()
        pages = 18
        version = store.append(blob_id, make_payload(pages * PAGE))
        store.sync(blob_id, version)
        assert cluster.stored_page_count() == pages * 2

    def test_degraded_write_lands_on_surviving_replicas(self):
        # A replica dying mid-write degrades redundancy, never the write.
        cluster = replicated_data_cluster(replicas=2, providers=3)
        store = uncached_store(cluster)
        blob_id = store.create()
        victim = cluster.provider_manager.provider_ids()[0]
        cluster.provider_manager.provider(victim).kill()  # dead but registered
        payload = make_payload(6 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, len(payload)) == payload


class TestRepairService:
    def test_repair_restores_replication_after_a_kill(self):
        cluster = replicated_data_cluster(replicas=2, providers=6)
        store = uncached_store(cluster)
        blob_id = store.create()
        pages = 24
        payload = make_payload(pages * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        repair_service = RepairService(cluster)

        victim = busiest_provider(cluster)
        lost = cluster.provider_manager.provider(victim).page_count()
        cluster.kill_data_provider(victim)
        assert repair_service.under_replicated() == lost

        report = repair_service.repair()
        assert report.pages_scanned == pages
        assert report.pages_re_replicated == lost
        assert report.copies_created == lost
        assert report.pages_unrecoverable == 0
        assert report.backlog == 0
        assert repair_service.under_replicated() == 0
        # Every page again has two LIVE copies (the replica-count scan the
        # acceptance criteria call for), and reads succeed.
        live_copies = sum(
            provider.page_count()
            for provider in cluster.provider_manager.providers()
            if provider.alive
        )
        assert live_copies == pages * 2
        assert store.read(blob_id, version, 0, len(payload)) == payload

    def test_repair_is_idempotent_on_a_healthy_cluster(self):
        cluster = replicated_data_cluster(replicas=2, providers=6)
        store = uncached_store(cluster)
        blob_id = store.create()
        version = store.append(blob_id, make_payload(12 * PAGE))
        store.sync(blob_id, version)
        report = RepairService(cluster).repair()
        assert report.pages_healthy == report.pages_scanned == 12
        assert report.leaves_rewritten == 0
        assert report.copies_created == 0

    def test_unrecoverable_pages_wait_for_their_holder_to_rejoin(self):
        cluster = replicated_data_cluster(replicas=1, providers=4)
        store = uncached_store(cluster)
        blob_id = store.create()
        version = store.append(blob_id, make_payload(8 * PAGE))
        store.sync(blob_id, version)
        repair_service = RepairService(cluster)

        victim = busiest_provider(cluster)
        lost = cluster.provider_manager.provider(victim).page_count()
        cluster.kill_data_provider(victim)
        report = repair_service.repair(target=1)
        assert report.pages_unrecoverable == lost
        assert report.backlog == lost

        cluster.revive_data_provider(victim)
        assert repair_service.under_replicated(target=1) == 0

    def test_rejoining_holder_may_leave_extra_copies(self):
        cluster = replicated_data_cluster(replicas=2, providers=6)
        store = uncached_store(cluster)
        blob_id = store.create()
        pages = 12
        payload = make_payload(pages * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        repair_service = RepairService(cluster)

        victim = busiest_provider(cluster)
        cluster.kill_data_provider(victim)
        repair_service.repair()
        cluster.revive_data_provider(victim)
        # The rejoined holder still has its pages: more live copies than the
        # target — harmless (DESIGN.md §5) and still fully repaired.
        assert repair_service.under_replicated() == 0
        assert cluster.stored_page_count() > pages * 2
        assert store.read(blob_id, version, 0, len(payload)) == payload


class TestGCWithReplicationAndChurn:
    def test_collect_garbage_deletes_every_replica(self):
        cluster = replicated_data_cluster(replicas=2, providers=6)
        store = uncached_store(cluster)
        blob_id = store.create()
        pages = 12
        v1 = store.append(blob_id, make_payload(pages * PAGE, seed=1))
        store.sync(blob_id, v1)
        payload2 = make_payload(pages * PAGE, seed=2)
        v2 = store.write(blob_id, payload2, 0)
        store.sync(blob_id, v2)
        assert cluster.stored_page_count() == 2 * pages * 2

        report = collect_garbage(cluster, {blob_id: [v2]})
        assert report.deleted_pages == pages * 2  # BOTH replicas of v1 pages
        assert cluster.stored_page_count() == pages * 2
        assert store.read(blob_id, v2, 0, len(payload2)) == payload2

    def test_repair_after_gc_does_not_resurrect_collected_pages(self):
        cluster = replicated_data_cluster(replicas=2, providers=6)
        store = uncached_store(cluster)
        blob_id = store.create()
        pages = 12
        v1 = store.append(blob_id, make_payload(pages * PAGE, seed=1))
        store.sync(blob_id, v1)
        v2 = store.write(blob_id, make_payload(pages * PAGE, seed=2), 0)
        store.sync(blob_id, v2)
        collect_garbage(cluster, {blob_id: [v2]})

        report = RepairService(cluster).repair()
        assert report.pages_scanned == pages  # only v2's pages are reachable
        assert report.copies_created == 0
        assert cluster.stored_page_count() == pages * 2

    def test_gc_skips_dead_providers_and_reads_stay_degraded_servable(self):
        cluster = replicated_data_cluster(replicas=2, providers=6)
        store = uncached_store(cluster)
        blob_id = store.create()
        pages = 12
        v1 = store.append(blob_id, make_payload(pages * PAGE, seed=1))
        store.sync(blob_id, v1)
        payload2 = make_payload(pages * PAGE, seed=2)
        v2 = store.write(blob_id, payload2, 0)
        store.sync(blob_id, v2)

        victim = busiest_provider(cluster)
        cluster.kill_data_provider(victim)
        report = collect_garbage(cluster, {blob_id: [v2]})
        assert victim in report.skipped_providers
        # GC composes with failover: the sweep survived the dead provider
        # AND the kept version reads fine through the surviving replicas.
        assert store.read(blob_id, v2, 0, len(payload2)) == payload2

        # Once the victim rejoins, a second (idempotent) pass reclaims the
        # v1 replicas it still holds.
        cluster.revive_data_provider(victim)
        second = collect_garbage(cluster, {blob_id: [v2]})
        assert second.skipped_providers == ()
        assert cluster.stored_page_count() == pages * 2
