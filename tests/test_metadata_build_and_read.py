"""Unit and property tests for the sans-IO metadata algorithms.

These tests exercise BUILD_META (Algorithm 4), READ_META (Algorithm 3) and
border-node resolution without any storage substrate: nodes live in a plain
dictionary keyed by (version, offset, size), which doubles as a reference
model of the DHT.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConcurrencyError, InvalidRangeError
from repro.metadata.build import (
    BorderSpec,
    border_plan,
    border_targets,
    build_nodes,
)
from repro.metadata.geometry import span_for_pages
from repro.metadata.node import InnerNode, LeafNode, NodeRef, PageDescriptor
from repro.metadata.read_plan import drive_plan, read_plan


def make_descriptors(version: int, offset: int, count: int, length: int = 64):
    return [
        PageDescriptor(
            page_index=offset + index,
            page_id=f"v{version}-p{offset + index}",
            provider_id=f"data-{(offset + index) % 4:04d}",
            length=length,
        )
        for index in range(count)
    ]


class TreeModel:
    """A tiny in-memory 'DHT' plus helpers to apply updates like a writer."""

    def __init__(self):
        self.nodes: dict[tuple[int, int, int], object] = {}
        self.num_pages = 0
        self.version = 0

    def fetch(self, ref: NodeRef):
        return self.nodes[(ref.version, ref.offset, ref.size)]

    def apply_update(self, page_offset: int, page_count: int, inflight=()):
        """Run border resolution + build for the next version and store it."""
        self.version += 1
        version = self.version
        prev_pages = self.num_pages
        new_pages = max(prev_pages, page_offset + page_count)
        span = span_for_pages(new_pages)
        needed, dangling = border_targets(page_offset, page_count, span, prev_pages)
        plan = border_plan(
            needed,
            dangling,
            version - 1 if version > 1 else None,
            prev_pages,
            list(inflight),
        )
        spec = drive_plan(plan, self.fetch)
        build = build_nodes(
            version,
            page_offset,
            page_count,
            span,
            make_descriptors(version, page_offset, page_count),
            spec,
        )
        for ref, node in build.nodes:
            self.nodes[(ref.version, ref.offset, ref.size)] = node
        self.num_pages = new_pages
        return build

    def read(self, version: int, page_offset: int, page_count: int, num_pages=None):
        span = span_for_pages(self.num_pages if num_pages is None else num_pages)
        plan = read_plan(version, span, page_offset, page_count)
        return drive_plan(plan, self.fetch)


class TestBorderTargets:
    def test_first_write_has_only_dangling_borders(self):
        needed, dangling = border_targets(0, 3, 4, 0)
        assert needed == []
        assert dangling == [(3, 1)]

    def test_overwrite_inside_existing_blob(self):
        # Figure 1(b): overwrite pages 2-3 of a 4-page blob.
        needed, dangling = border_targets(2, 2, 4, 4)
        assert needed == [(0, 2)]
        assert dangling == []

    def test_append_expanding_the_tree(self):
        # Figure 1(c): append page 4 to a 4-page blob (span 4 -> 8).
        needed, dangling = border_targets(4, 1, 8, 4)
        assert (0, 4) in needed
        assert (5, 1) in dangling and (6, 2) in dangling
        assert set(needed) == {(0, 4)}

    def test_zero_size_update_rejected(self):
        with pytest.raises(InvalidRangeError):
            border_targets(0, 0, 4, 4)


class TestBuildNodes:
    def test_first_full_write_builds_complete_tree(self):
        spec = BorderSpec()
        build = build_nodes(1, 0, 4, 4, make_descriptors(1, 0, 4), spec)
        ranges = {(ref.offset, ref.size) for ref, _ in build.nodes}
        assert ranges == {(0, 1), (1, 1), (2, 1), (3, 1), (0, 2), (2, 2), (0, 4)}
        assert build.root_ref == NodeRef(1, 0, 4)
        root = dict(
            ((ref.offset, ref.size), node) for ref, node in build.nodes
        )[(0, 4)]
        assert isinstance(root, InnerNode)
        assert root.left_version == 1 and root.right_version == 1

    def test_partial_write_weaves_border_versions(self):
        spec = BorderSpec(versions={(0, 2): 1})
        build = build_nodes(2, 2, 2, 4, make_descriptors(2, 2, 2), spec)
        nodes = {(ref.offset, ref.size): node for ref, node in build.nodes}
        assert set(nodes) == {(2, 1), (3, 1), (2, 2), (0, 4)}
        assert nodes[(0, 4)].left_version == 1   # shared with snapshot 1
        assert nodes[(0, 4)].right_version == 2  # newly created subtree

    def test_incomplete_first_write_has_dangling_pointer(self):
        spec = BorderSpec(versions={(3, 1): None})
        build = build_nodes(1, 0, 3, 4, make_descriptors(1, 0, 3), spec)
        nodes = {(ref.offset, ref.size): node for ref, node in build.nodes}
        assert nodes[(2, 2)].right_version is None
        assert nodes[(2, 2)].left_version == 1

    def test_single_page_blob_root_is_leaf(self):
        build = build_nodes(1, 0, 1, 1, make_descriptors(1, 0, 1), BorderSpec())
        assert build.node_count == 1
        ref, node = build.nodes[0]
        assert ref == NodeRef(1, 0, 1)
        assert isinstance(node, LeafNode)

    def test_missing_border_version_raises(self):
        with pytest.raises(ConcurrencyError):
            build_nodes(2, 2, 2, 4, make_descriptors(2, 2, 2), BorderSpec())

    def test_descriptor_coverage_is_validated(self):
        with pytest.raises(InvalidRangeError):
            build_nodes(1, 0, 4, 4, make_descriptors(1, 0, 3), BorderSpec())
        with pytest.raises(InvalidRangeError):
            build_nodes(1, 0, 2, 4, make_descriptors(1, 0, 3), BorderSpec())

    def test_span_too_small_rejected(self):
        with pytest.raises(InvalidRangeError):
            build_nodes(1, 2, 4, 4, make_descriptors(1, 2, 4), BorderSpec())

    def test_nodes_are_emitted_bottom_up(self):
        spec = BorderSpec()
        build = build_nodes(1, 0, 8, 8, make_descriptors(1, 0, 8), spec)
        sizes = [ref.size for ref, _ in build.nodes]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 8


class TestReadPlan:
    def test_read_covers_requested_pages_only(self):
        model = TreeModel()
        model.apply_update(0, 8)
        result = model.read(1, 2, 3)
        assert [d.page_index for d in result.sorted_descriptors()] == [2, 3, 4]
        assert all(d.page_id == f"v1-p{d.page_index}" for d in result.descriptors)

    def test_reading_older_and_newer_versions(self):
        model = TreeModel()
        model.apply_update(0, 4)     # v1: pages 0-3
        model.apply_update(2, 2)     # v2: overwrite pages 2-3
        old = model.read(1, 0, 4)
        new = model.read(2, 0, 4)
        assert [d.page_id for d in old.sorted_descriptors()] == [
            "v1-p0", "v1-p1", "v1-p2", "v1-p3"]
        assert [d.page_id for d in new.sorted_descriptors()] == [
            "v1-p0", "v1-p1", "v2-p2", "v2-p3"]

    def test_traversal_is_pruned_to_the_requested_range(self):
        model = TreeModel()
        model.apply_update(0, 64)
        result = model.read(1, 10, 1)
        # One path from the root to a single leaf: depth(64) = 7 nodes.
        assert result.nodes_fetched == 7
        assert result.leaves_visited == 1

    def test_empty_read_returns_no_descriptors(self):
        model = TreeModel()
        model.apply_update(0, 4)
        result = model.read(1, 0, 0)
        assert result.descriptors == []
        assert result.nodes_fetched == 0

    def test_out_of_span_read_rejected(self):
        model = TreeModel()
        model.apply_update(0, 4)
        with pytest.raises(InvalidRangeError):
            model.read(1, 2, 8)

    def test_read_from_empty_tree_rejected(self):
        with pytest.raises(InvalidRangeError):
            drive_plan(read_plan(1, 0, 0, 1), lambda ref: None)


class TestConcurrentBorderResolution:
    def test_inflight_updates_resolve_borders_without_fetching(self):
        """Two concurrent appenders: the second references the first through
        the in-flight hint, never fetching its (not yet written) nodes."""
        model = TreeModel()
        model.apply_update(0, 4)  # published snapshot 1
        # Writer A (version 2) appends pages 4-5 but has NOT written metadata.
        # Writer B (version 3) appends pages 6-7 concurrently.
        needed, dangling = border_targets(6, 2, 8, 6)
        plan = border_plan(needed, dangling, 1, 4, [(2, 4, 2)])
        spec = drive_plan(plan, model.fetch)
        assert spec.versions[(4, 2)] == 2      # resolved from the in-flight hint
        assert spec.versions[(0, 4)] == 1      # resolved from the published tree

    def test_unresolvable_border_raises(self):
        needed, dangling = border_targets(2, 2, 4, 2)
        plan = border_plan(needed, dangling, None, 0, [])
        with pytest.raises(ConcurrencyError):
            drive_plan(plan, lambda ref: None)

    def test_latest_intersecting_inflight_wins(self):
        needed = [(0, 2)]
        plan = border_plan(needed, [], None, 0, [(3, 0, 2), (5, 0, 1), (4, 2, 2)])
        spec = drive_plan(plan, lambda ref: None)
        assert spec.versions[(0, 2)] == 5


class TestVersionedHistoryProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),   # offset (pages)
                st.integers(min_value=1, max_value=24),   # count (pages)
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_every_version_reads_back_its_own_history(self, updates):
        """Property: after any sequence of valid updates, reading any version
        returns, for every page, the page written by the latest update <= that
        version touching it (the paper's snapshot semantics)."""
        model = TreeModel()
        expected: dict[int, dict[int, str]] = {0: {}}
        for offset, count in updates:
            # Clamp to the contiguity rule: a write must start within the blob.
            offset = min(offset, model.num_pages)
            model.apply_update(offset, count)
            previous = expected[model.version - 1]
            current = dict(previous)
            for page in range(offset, offset + count):
                current[page] = f"v{model.version}-p{page}"
            expected[model.version] = current

        for version in range(1, model.version + 1):
            num_pages = max(expected[version]) + 1
            result = model.read(version, 0, num_pages, num_pages=num_pages)
            got = {d.page_index: d.page_id for d in result.descriptors}
            assert got == expected[version]
