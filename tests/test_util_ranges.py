"""Unit and property tests for range/page arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidRangeError
from repro.util.ranges import (
    ByteRange,
    PageRange,
    ceil_div,
    covering_page_range,
    intersection,
    intersects,
    is_aligned,
    next_power_of_two,
    split_aligned,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_matches_float_ceiling(self, a, b):
        assert ceil_div(a, b) == (a + b - 1) // b


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (1023, 1024), (1025, 2048)],
    )
    def test_known_values(self, value, expected):
        assert next_power_of_two(value) == expected

    @given(st.integers(min_value=1, max_value=2**40))
    def test_is_power_of_two_and_bounds(self, value):
        result = next_power_of_two(value)
        assert result & (result - 1) == 0
        assert result >= value
        assert result < 2 * value


class TestIntersects:
    def test_overlapping(self):
        assert intersects(0, 10, 5, 10)

    def test_adjacent_ranges_do_not_intersect(self):
        assert not intersects(0, 10, 10, 5)

    def test_contained(self):
        assert intersects(0, 100, 10, 5)

    def test_empty_never_intersects(self):
        assert not intersects(5, 0, 0, 100)
        assert not intersects(0, 100, 5, 0)

    @given(
        st.integers(0, 1000), st.integers(0, 100),
        st.integers(0, 1000), st.integers(0, 100),
    )
    def test_symmetric(self, a, sa, b, sb):
        assert intersects(a, sa, b, sb) == intersects(b, sb, a, sa)

    @given(
        st.integers(0, 1000), st.integers(1, 100),
        st.integers(0, 1000), st.integers(1, 100),
    )
    def test_consistent_with_intersection(self, a, sa, b, sb):
        hit = intersection(a, sa, b, sb)
        assert (hit is not None) == intersects(a, sa, b, sb)
        if hit is not None:
            offset, size = hit
            assert size > 0
            assert offset >= max(a, b)
            assert offset + size <= min(a + sa, b + sb)


class TestAlignment:
    def test_aligned_range(self):
        assert is_aligned(128, 256, 64)

    def test_unaligned_offset(self):
        assert not is_aligned(100, 256, 64)

    def test_unaligned_size(self):
        assert not is_aligned(128, 100, 64)


class TestCoveringPageRange:
    def test_exact_pages(self):
        assert covering_page_range(128, 256, 64) == (2, 4)

    def test_partial_boundaries(self):
        assert covering_page_range(100, 100, 64) == (1, 3)

    def test_empty_range(self):
        assert covering_page_range(100, 0, 64) == (1, 0)

    def test_negative_rejected(self):
        with pytest.raises(InvalidRangeError):
            covering_page_range(-1, 10, 64)

    @given(
        st.integers(0, 10**6),
        st.integers(1, 10**5),
        st.sampled_from([16, 64, 256, 4096]),
    )
    def test_covers_the_byte_range(self, offset, size, page):
        first, count = covering_page_range(offset, size, page)
        assert first * page <= offset
        assert (first + count) * page >= offset + size
        # Minimality: one page less would not cover.
        assert (first + count - 1) * page < offset + size


class TestSplitAligned:
    def test_single_partial_page(self):
        assert split_aligned(10, 20, 64) == [(0, 10, 20)]

    def test_spanning_pages(self):
        pieces = split_aligned(60, 10, 64)
        assert pieces == [(0, 60, 4), (1, 0, 6)]

    @given(st.integers(0, 10**5), st.integers(0, 10**4), st.sampled_from([16, 64, 256]))
    def test_pieces_tile_the_range(self, offset, size, page):
        pieces = split_aligned(offset, size, page)
        assert sum(length for _, _, length in pieces) == size
        position = offset
        for page_index, offset_in_page, length in pieces:
            assert page_index * page + offset_in_page == position
            assert 0 < length <= page or size == 0
            assert offset_in_page + length <= page
            position += length


class TestByteRange:
    def test_end_and_empty(self):
        byte_range = ByteRange(10, 20)
        assert byte_range.end == 30
        assert not byte_range.is_empty()
        assert ByteRange(5, 0).is_empty()

    def test_contains(self):
        assert ByteRange(0, 100).contains(ByteRange(10, 20))
        assert not ByteRange(0, 100).contains(ByteRange(90, 20))

    def test_negative_rejected(self):
        with pytest.raises(InvalidRangeError):
            ByteRange(-1, 5)
        with pytest.raises(InvalidRangeError):
            ByteRange(0, -5)

    def test_to_pages_roundtrip(self):
        page_range = ByteRange(100, 100).to_pages(64)
        assert page_range == PageRange(1, 3)
        assert page_range.to_bytes(64) == ByteRange(64, 192)

    def test_intersection(self):
        assert ByteRange(0, 10).intersection(ByteRange(5, 10)) == ByteRange(5, 5)
        assert ByteRange(0, 10).intersection(ByteRange(20, 10)) is None


class TestPageRange:
    def test_pages_iteration(self):
        assert list(PageRange(3, 4).pages()) == [3, 4, 5, 6]

    def test_intersects_and_contains(self):
        assert PageRange(0, 4).intersects(PageRange(3, 4))
        assert not PageRange(0, 4).intersects(PageRange(4, 4))
        assert PageRange(0, 8).contains(PageRange(2, 3))

    def test_ordering_is_by_offset_then_size(self):
        assert PageRange(1, 2) < PageRange(2, 1)
        assert PageRange(1, 1) < PageRange(1, 2)
