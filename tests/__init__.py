"""Package context for the test suite.

Makes ``tests`` a proper package so ``from .conftest import ...`` resolves
regardless of which directory pytest collects first (``benchmarks/`` also
has a ``conftest.py``, so relying on rootdir sys.path insertion would make
the two conftests shadow each other).
"""
