"""Concurrency tests with real threads: atomicity, total order, isolation.

These tests exercise the guarantees of Section 4.3 with genuinely concurrent
clients (threads) against the in-process cluster: updates are atomic and
totally ordered, concurrent appenders never lose data, readers always see a
consistent published snapshot, and writers never wait for each other's
metadata (the border-node hand-off).
"""

import random
import threading

import pytest

from repro import BlobStore, Cluster

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


@pytest.fixture(autouse=True)
def _sanitize_concurrency(lock_sanitizer):
    """Run every test in this module under the lock-order sanitizer: any
    inconsistent lock ordering or lock held across a suspension raises
    instead of deadlocking flakily (see :mod:`repro.analysis.sanitizer`)."""
    yield lock_sanitizer


def run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentAppenders:
    def test_no_append_is_lost_and_order_is_total(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        writers = 8
        appends_each = 6
        chunk = PAGE  # one page per append, tagged with the writer id

        def appender(writer_id: int):
            def work():
                for index in range(appends_each):
                    payload = bytes([writer_id]) * chunk
                    store.append(blob_id, payload)
            return work

        run_threads([appender(writer_id) for writer_id in range(writers)])
        final = store.get_recent(blob_id)
        assert final == writers * appends_each
        store.sync(blob_id, final)
        data = store.read(blob_id, final, 0, store.get_size(blob_id, final))
        assert len(data) == writers * appends_each * chunk
        # Every page is exactly one writer's payload and per-writer counts match.
        counts = {writer_id: 0 for writer_id in range(writers)}
        for page_start in range(0, len(data), chunk):
            page = data[page_start:page_start + chunk]
            assert len(set(page)) == 1
            counts[page[0]] += 1
        assert all(count == appends_each for count in counts.values())

    def test_every_intermediate_version_is_consistent(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        writers = 6

        def appender(writer_id: int):
            def work():
                store.append(blob_id, bytes([writer_id + 1]) * (2 * PAGE))
            return work

        run_threads([appender(writer_id) for writer_id in range(writers)])
        final = store.get_recent(blob_id)
        assert final == writers
        for version in range(1, final + 1):
            size = store.get_size(blob_id, version)
            assert size == version * 2 * PAGE
            data = store.read(blob_id, version, 0, size)
            # A prefix property: each earlier snapshot is a prefix of later ones.
            if version > 1:
                previous = store.read(blob_id, version - 1, 0, size - 2 * PAGE)
                assert data.startswith(previous)


class TestConcurrentWritersOnDisjointRanges:
    def test_disjoint_overwrites_all_land(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        regions = 10
        store.append(blob_id, bytes(regions * 2 * PAGE))
        store.sync(blob_id, 1)

        def writer(region: int):
            def work():
                payload = bytes([region + 1]) * (2 * PAGE)
                store.write(blob_id, payload, region * 2 * PAGE)
            return work

        run_threads([writer(region) for region in range(regions)])
        final = store.get_recent(blob_id)
        assert final == regions + 1
        data = store.read(blob_id, final, 0, regions * 2 * PAGE)
        for region in range(regions):
            segment = data[region * 2 * PAGE:(region + 1) * 2 * PAGE]
            assert segment == bytes([region + 1]) * (2 * PAGE)


class TestConcurrentReadersAndWriters:
    def test_readers_always_see_published_consistent_snapshots(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        stop = threading.Event()
        errors: list[str] = []

        def appender():
            for index in range(25):
                store.append(blob_id, bytes([index % 251 + 1]) * PAGE)
            stop.set()

        def reader():
            rng = random.Random(42)
            while not stop.is_set():
                version = store.get_recent(blob_id)
                size = store.get_size(blob_id, version)
                assert size == version * PAGE
                if size == 0:
                    continue
                offset = rng.randrange(0, size)
                length = rng.randrange(0, size - offset) if size > offset else 0
                data = store.read(blob_id, version, offset, length)
                if len(data) != length:
                    errors.append(f"short read at version {version}")
                # Page contents must be uniform by construction.
                for page_start in range(offset - offset % PAGE, offset + length, PAGE):
                    lo = max(page_start, offset)
                    hi = min(page_start + PAGE, offset + length)
                    chunk = data[lo - offset:hi - offset]
                    if chunk and len(set(chunk)) != 1:
                        errors.append(f"torn page at version {version}")

        run_threads([appender] + [reader] * 4)
        assert errors == []

    def test_sync_provides_read_your_writes(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        results: list[bool] = []
        lock = threading.Lock()

        def writer(writer_id: int):
            def work():
                payload = bytes([writer_id + 1]) * PAGE
                version = store.append(blob_id, payload)
                store.sync(blob_id, version)
                offset = store.get_size(blob_id, version) - PAGE
                data = store.read(blob_id, version, offset, PAGE)
                with lock:
                    results.append(data == payload)
            return work

        run_threads([writer(writer_id) for writer_id in range(8)])
        assert len(results) == 8
        assert all(results)


class TestConcurrentBranching:
    def test_branches_created_concurrently_stay_isolated(self, cluster):
        store = BlobStore(cluster)
        blob_id = store.create()
        base = make_payload(4 * PAGE, seed=1)
        store.append(blob_id, base)
        store.sync(blob_id, 1)
        branch_data: dict[int, tuple[str, bytes]] = {}
        lock = threading.Lock()

        def brancher(index: int):
            def work():
                branch = store.branch(blob_id, 1)
                payload = bytes([index + 1]) * PAGE
                version = store.write(branch, payload, PAGE * (index % 4))
                store.sync(branch, version)
                with lock:
                    branch_data[index] = (branch, payload)
            return work

        run_threads([brancher(index) for index in range(6)])
        assert len(branch_data) == 6
        for index, (branch, payload) in branch_data.items():
            data = store.read(branch, store.get_recent(branch), 0, 4 * PAGE)
            offset = PAGE * (index % 4)
            assert data[offset:offset + PAGE] == payload
        # The original is untouched.
        assert store.read(blob_id, 1, 0, 4 * PAGE) == base


class TestParallelClientsSeparateStores:
    def test_one_store_per_thread_is_equivalent(self):
        cluster = Cluster.in_memory(
            num_data_providers=6, num_metadata_providers=6, page_size=PAGE
        )
        blob_id = BlobStore(cluster).create()

        def appender(writer_id: int):
            def work():
                local_store = BlobStore(cluster)
                for _ in range(4):
                    local_store.append(blob_id, bytes([writer_id + 1]) * PAGE)
            return work

        run_threads([appender(writer_id) for writer_id in range(5)])
        store = BlobStore(cluster)
        final = store.get_recent(blob_id)
        assert final == 20
        assert store.get_size(blob_id, final) == 20 * PAGE
