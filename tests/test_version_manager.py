"""Unit tests for the version manager: assignment, publication order,
SYNC, GET_RECENT/GET_SIZE, aborts and branching bookkeeping."""

import threading
import time

import pytest

from repro.config import BlobSeerConfig
from repro.errors import (
    ConcurrencyError,
    InvalidRangeError,
    UnknownBlobError,
    UpdateAbortedError,
    VersionNotPublishedError,
)
from repro.version.records import resolve_owner
from repro.version.version_manager import VersionManager

PAGE = 64


@pytest.fixture
def vm() -> VersionManager:
    return VersionManager(BlobSeerConfig(page_size=PAGE, num_data_providers=4,
                                         num_metadata_providers=4))


@pytest.fixture
def blob(vm) -> str:
    return vm.create_blob().blob_id


class TestCreateAndQueries:
    def test_create_publishes_empty_snapshot_zero(self, vm, blob):
        assert vm.get_recent(blob) == 0
        assert vm.get_size(blob, 0) == 0
        assert vm.is_published(blob, 0)

    def test_blob_ids_are_unique(self, vm):
        assert vm.create_blob().blob_id != vm.create_blob().blob_id

    def test_unknown_blob_raises(self, vm):
        with pytest.raises(UnknownBlobError):
            vm.get_recent("nope")
        with pytest.raises(UnknownBlobError):
            vm.register_update("nope", 10, offset=0)

    def test_page_size_override(self, vm):
        record = vm.create_blob(page_size=128)
        assert record.page_size == 128

    def test_unpublished_version_queries_fail(self, vm, blob):
        with pytest.raises(VersionNotPublishedError):
            vm.get_size(blob, 1)
        assert not vm.is_published(blob, 1)


class TestAssignment:
    def test_versions_are_sequential(self, vm, blob):
        t1 = vm.register_update(blob, PAGE, is_append=True)
        t2 = vm.register_update(blob, PAGE, is_append=True)
        assert (t1.version, t2.version) == (1, 2)

    def test_append_offset_is_previous_size(self, vm, blob):
        t1 = vm.register_update(blob, 100, is_append=True)
        t2 = vm.register_update(blob, 50, is_append=True)
        assert t1.byte_offset == 0
        assert t2.byte_offset == 100
        assert t2.prev_size == 100
        assert t2.new_size == 150

    def test_write_requires_offset_within_previous_size(self, vm, blob):
        vm.register_update(blob, 100, is_append=True)
        vm.register_update(blob, 10, offset=100)  # exactly at the end: allowed
        with pytest.raises(InvalidRangeError):
            vm.register_update(blob, 10, offset=200)

    def test_write_without_offset_rejected(self, vm, blob):
        with pytest.raises(InvalidRangeError):
            vm.register_update(blob, 10)

    def test_empty_update_rejected(self, vm, blob):
        with pytest.raises(InvalidRangeError):
            vm.register_update(blob, 0, is_append=True)

    def test_ticket_geometry(self, vm, blob):
        ticket = vm.register_update(blob, 3 * PAGE, offset=0)
        assert ticket.page_offset == 0
        assert ticket.page_count == 3
        assert ticket.new_num_pages == 3
        assert ticket.span == 4
        assert ticket.prev_num_pages == 0

    def test_inflight_hints_list_earlier_unpublished_updates(self, vm, blob):
        t1 = vm.register_update(blob, 2 * PAGE, is_append=True)
        t2 = vm.register_update(blob, PAGE, is_append=True)
        t3 = vm.register_update(blob, PAGE, is_append=True)
        assert [u.version for u in t3.inflight] == [1, 2]
        assert t3.inflight[0].page_offset == 0
        assert t3.inflight[0].page_count == 2
        assert t3.inflight[1].page_offset == 2
        assert t2.published_version == 0
        # Once version 1 is published, it leaves the hint list.
        vm.complete_update(blob, t1.version)
        t4 = vm.register_update(blob, PAGE, is_append=True)
        assert [u.version for u in t4.inflight] == [2, 3]
        assert t4.published_version == 1


class TestPublication:
    def test_publication_waits_for_earlier_versions(self, vm, blob):
        t1 = vm.register_update(blob, PAGE, is_append=True)
        t2 = vm.register_update(blob, PAGE, is_append=True)
        vm.complete_update(blob, t2.version)
        assert vm.get_recent(blob) == 0          # v1 still in flight
        assert not vm.is_published(blob, t2.version)
        vm.complete_update(blob, t1.version)
        assert vm.get_recent(blob) == 2          # both published together
        assert vm.is_published(blob, 1) and vm.is_published(blob, 2)

    def test_completing_unknown_version_raises(self, vm, blob):
        with pytest.raises(ConcurrencyError):
            vm.complete_update(blob, 1)

    def test_completing_twice_raises(self, vm, blob):
        ticket = vm.register_update(blob, PAGE, is_append=True)
        vm.complete_update(blob, ticket.version)
        with pytest.raises(ConcurrencyError):
            vm.complete_update(blob, ticket.version)

    def test_get_size_reflects_published_versions_only(self, vm, blob):
        ticket = vm.register_update(blob, 100, is_append=True)
        with pytest.raises(VersionNotPublishedError):
            vm.get_size(blob, ticket.version)
        vm.complete_update(blob, ticket.version)
        assert vm.get_size(blob, ticket.version) == 100

    def test_inflight_count(self, vm, blob):
        assert vm.inflight_count(blob) == 0
        ticket = vm.register_update(blob, PAGE, is_append=True)
        assert vm.inflight_count(blob) == 1
        vm.complete_update(blob, ticket.version)
        assert vm.inflight_count(blob) == 0


class TestSync:
    def test_sync_returns_for_published_version(self, vm, blob):
        ticket = vm.register_update(blob, PAGE, is_append=True)
        vm.complete_update(blob, ticket.version)
        vm.sync(blob, ticket.version)  # returns immediately

    def test_sync_blocks_until_publication(self, vm, blob):
        ticket = vm.register_update(blob, PAGE, is_append=True)
        released = threading.Event()

        def completer():
            time.sleep(0.05)
            vm.complete_update(blob, ticket.version)
            released.set()

        thread = threading.Thread(target=completer)
        thread.start()
        vm.sync(blob, ticket.version, timeout=5)
        assert released.is_set()
        thread.join()

    def test_sync_timeout(self, vm, blob):
        ticket = vm.register_update(blob, PAGE, is_append=True)
        with pytest.raises(VersionNotPublishedError):
            vm.sync(blob, ticket.version, timeout=0.05)

    def test_sync_on_never_assigned_version_fails_fast(self, vm, blob):
        with pytest.raises(VersionNotPublishedError):
            vm.sync(blob, 7, timeout=0.05)

    def test_sync_on_aborted_version_raises(self, vm, blob):
        ticket = vm.register_update(blob, PAGE, is_append=True)
        vm.abort_update(blob, ticket.version)
        with pytest.raises(UpdateAbortedError):
            vm.sync(blob, ticket.version, timeout=1)


class TestAborts:
    def test_abort_unblocks_later_versions(self, vm, blob):
        t1 = vm.register_update(blob, PAGE, is_append=True)
        t2 = vm.register_update(blob, PAGE, is_append=True)
        vm.complete_update(blob, t2.version)
        vm.abort_update(blob, t1.version)
        assert vm.is_published(blob, t2.version)
        assert vm.get_recent(blob) == t2.version

    def test_aborted_version_is_skipped_by_get_recent(self, vm, blob):
        t1 = vm.register_update(blob, PAGE, is_append=True)
        vm.complete_update(blob, t1.version)
        t2 = vm.register_update(blob, PAGE, is_append=True)
        vm.abort_update(blob, t2.version)
        assert vm.get_recent(blob) == t1.version
        with pytest.raises(VersionNotPublishedError):
            vm.get_size(blob, t2.version)

    def test_abort_then_append_does_not_leave_a_hole(self, vm, blob):
        t1 = vm.register_update(blob, 100, is_append=True)
        vm.abort_update(blob, t1.version)
        t2 = vm.register_update(blob, 50, is_append=True)
        assert t2.byte_offset == 0  # the aborted bytes are not accounted

    def test_abort_unknown_version_raises(self, vm, blob):
        with pytest.raises(ConcurrencyError):
            vm.abort_update(blob, 3)

    def test_completing_aborted_version_raises(self, vm, blob):
        ticket = vm.register_update(blob, PAGE, is_append=True)
        vm.abort_update(blob, ticket.version)
        with pytest.raises(UpdateAbortedError):
            vm.complete_update(blob, ticket.version)

    def test_timeout_reaps_stuck_updates(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE, update_timeout=0.05))
        blob = vm.create_blob().blob_id
        stuck = vm.register_update(blob, PAGE, is_append=True)
        time.sleep(0.08)
        fresh = vm.register_update(blob, PAGE, is_append=True)
        vm.complete_update(blob, fresh.version)
        assert vm.get_recent(blob) == fresh.version
        assert not vm.is_published(blob, stuck.version)


class TestBranching:
    def test_branch_requires_published_version(self, vm, blob):
        ticket = vm.register_update(blob, PAGE, is_append=True)
        with pytest.raises(VersionNotPublishedError):
            vm.branch(blob, ticket.version)
        vm.complete_update(blob, ticket.version)
        branch = vm.branch(blob, ticket.version)
        assert branch.lineage == ((blob, 1),)

    def test_branch_starts_after_the_branch_point(self, vm, blob):
        t1 = vm.register_update(blob, 2 * PAGE, is_append=True)
        vm.complete_update(blob, t1.version)
        branch = vm.branch(blob, 1).blob_id
        assert vm.get_recent(branch) == 1
        assert vm.get_size(branch, 1) == 2 * PAGE
        ticket = vm.register_update(branch, PAGE, is_append=True)
        assert ticket.version == 2
        assert ticket.byte_offset == 2 * PAGE

    def test_branches_diverge_independently(self, vm, blob):
        t1 = vm.register_update(blob, PAGE, is_append=True)
        vm.complete_update(blob, t1.version)
        branch = vm.branch(blob, 1).blob_id
        tb = vm.register_update(branch, PAGE, is_append=True)
        to = vm.register_update(blob, 3 * PAGE, is_append=True)
        vm.complete_update(branch, tb.version)
        vm.complete_update(blob, to.version)
        assert vm.get_size(blob, 2) == 4 * PAGE
        assert vm.get_size(branch, 2) == 2 * PAGE

    def test_nested_branch_lineage(self, vm, blob):
        t1 = vm.register_update(blob, PAGE, is_append=True)
        vm.complete_update(blob, t1.version)
        child = vm.branch(blob, 1)
        t2 = vm.register_update(child.blob_id, PAGE, is_append=True)
        vm.complete_update(child.blob_id, t2.version)
        grandchild = vm.branch(child.blob_id, 2)
        assert grandchild.lineage == ((child.blob_id, 2), (blob, 1))
        assert resolve_owner(grandchild, 1) == blob
        assert resolve_owner(grandchild, 2) == child.blob_id
        assert resolve_owner(grandchild, 3) == grandchild.blob_id

    def test_resolve_owner_for_plain_blob(self, vm, blob):
        record = vm.get_record(blob)
        assert resolve_owner(record, 0) == blob
        assert resolve_owner(record, 5) == blob
