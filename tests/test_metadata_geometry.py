"""Unit and property tests for segment-tree geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidRangeError
from repro.metadata.geometry import (
    children_of,
    is_leaf_range,
    node_ranges_covering,
    pages_for_size,
    parent_of,
    span_for_pages,
    tree_depth,
    validate_node_range,
)
from repro.util.ranges import intersects


class TestPagesAndSpan:
    @pytest.mark.parametrize(
        "size,page,expected",
        [(0, 64, 0), (1, 64, 1), (64, 64, 1), (65, 64, 2), (640, 64, 10)],
    )
    def test_pages_for_size(self, size, page, expected):
        assert pages_for_size(size, page) == expected

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidRangeError):
            pages_for_size(-1, 64)

    @pytest.mark.parametrize(
        "pages,expected", [(0, 0), (1, 1), (2, 2), (3, 4), (5, 8), (1024, 1024)]
    )
    def test_span_for_pages(self, pages, expected):
        assert span_for_pages(pages) == expected

    @pytest.mark.parametrize("span,depth", [(0, 0), (1, 1), (2, 2), (4, 3), (1024, 11)])
    def test_tree_depth(self, span, depth):
        assert tree_depth(span) == depth


class TestNodeRangeValidation:
    def test_valid_ranges(self):
        validate_node_range(0, 1)
        validate_node_range(4, 4)
        validate_node_range(8, 2)

    @pytest.mark.parametrize("offset,size", [(0, 0), (0, 3), (1, 2), (3, 4), (-2, 2)])
    def test_invalid_ranges(self, offset, size):
        with pytest.raises(InvalidRangeError):
            validate_node_range(offset, size)

    def test_leaf_detection(self):
        assert is_leaf_range(7, 1)
        assert not is_leaf_range(0, 2)


class TestParentsAndChildren:
    def test_children(self):
        assert children_of(0, 4) == ((0, 2), (2, 2))
        assert children_of(4, 2) == ((4, 1), (5, 1))

    def test_leaf_has_no_children(self):
        with pytest.raises(InvalidRangeError):
            children_of(3, 1)

    def test_parent_left_and_right(self):
        assert parent_of(0, 2) == (0, 4, "LEFT")
        assert parent_of(2, 2) == (0, 4, "RIGHT")
        assert parent_of(4, 1) == (4, 2, "LEFT")
        assert parent_of(5, 1) == (4, 2, "RIGHT")

    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=2**10),
    )
    def test_parent_child_roundtrip(self, level, block):
        size = 1 << level
        offset = block * size
        parent_offset, parent_size, position = parent_of(offset, size)
        left, right = children_of(parent_offset, parent_size)
        child = left if position == "LEFT" else right
        assert child == (offset, size)


class TestNodeRangesCovering:
    def test_full_tree(self):
        ranges = node_ranges_covering(0, 4, 4)
        assert set(ranges) == {(0, 1), (1, 1), (2, 1), (3, 1), (0, 2), (2, 2), (0, 4)}
        # Bottom-up order: leaves first, root last.
        assert ranges[-1] == (0, 4)
        assert all(size == 1 for _, size in ranges[:4])

    def test_partial_update_matches_paper_figure_1b(self):
        """Figure 1(b): overwriting pages 2 and 3 of a 4-page blob creates
        the grey nodes (2,1), (3,1), (2,2) and (0,4)."""
        ranges = node_ranges_covering(2, 2, 4)
        assert set(ranges) == {(2, 1), (3, 1), (2, 2), (0, 4)}

    def test_append_expansion_matches_paper_figure_1c(self):
        """Figure 1(c): appending the 5th page (index 4) to a 4-page blob
        with a new span of 8 creates nodes along the path to the new root."""
        ranges = node_ranges_covering(4, 1, 8)
        assert set(ranges) == {(4, 1), (4, 2), (4, 4), (0, 8)}

    def test_empty_inputs(self):
        assert node_ranges_covering(0, 0, 4) == []
        assert node_ranges_covering(0, 4, 0) == []

    @given(
        span_exp=st.integers(min_value=0, max_value=8),
        data=st.data(),
    )
    def test_covering_property(self, span_exp, data):
        """A node range is produced iff it intersects the update range."""
        span = 1 << span_exp
        offset = data.draw(st.integers(min_value=0, max_value=span - 1))
        size = data.draw(st.integers(min_value=1, max_value=span - offset))
        produced = set(node_ranges_covering(offset, size, span))
        # Enumerate all node ranges of the tree and compare.
        expected = set()
        node_size = 1
        while node_size <= span:
            for node_offset in range(0, span, node_size):
                if intersects(node_offset, node_size, offset, size):
                    expected.add((node_offset, node_size))
            node_size *= 2
        assert produced == expected

    @given(
        span_exp=st.integers(min_value=0, max_value=8),
        data=st.data(),
    )
    def test_node_count_is_about_twice_the_update_plus_depth(self, span_exp, data):
        span = 1 << span_exp
        offset = data.draw(st.integers(min_value=0, max_value=span - 1))
        size = data.draw(st.integers(min_value=1, max_value=span - offset))
        count = len(node_ranges_covering(offset, size, span))
        assert count <= 2 * size + 2 * tree_depth(span)
        assert count >= size  # at least one leaf per updated page
