"""Tests of the cold-path latency treatment (DESIGN.md §9): speculative
frontier prefetch, cache-aware replica routing, and cooperative peer
caching — plus the counter-documentation contract those features extend.

The headline properties:

* speculation is INVISIBLE — byte-identical reads, identical
  ``metadata_nodes_fetched`` and round-trip counters; only the
  ``speculative_*`` pair may differ (and ``speculative_wasted`` is the only
  counter allowed to measure the over-fetch);
* routing is a stable no-op without suspects — an unreplicated or
  signal-free deployment behaves bit-identically to the pre-routing system;
* peer probes never inflate the fetch/trip tallies — a peer-served item was
  never fetched from the service side.
"""

from __future__ import annotations

import asyncio
import dataclasses
import inspect
import re

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import AsyncBlobStore, Cluster
from repro.cache import NodeCache, PageCache, PeerCacheGroup
from repro.config import KiB, MiB
from repro.core.async_store import ReadStats, WriteResult
from repro.dht import DHT
from repro.fault import ProviderHealth
from repro.fault.routing import rank_replicas
from repro.providers import DataProvider, ProviderManager
from repro.providers.provider_manager import FaultTally
from repro.sim.deployment import SimDeployment
from repro.sim.experiments import run_read_concurrency_experiment

from .conftest import TEST_PAGE_SIZE, make_payload
from .test_async_store import _drive_history, history_strategy

PAGE = 64


class TestRankReplicas:
    def test_no_signals_is_an_exact_no_op(self):
        replicas = ("a", "b", "c")
        assert rank_replicas(replicas) == replicas
        assert rank_replicas(replicas, suspects=frozenset()) == replicas

    def test_suspects_rank_last_and_order_is_stable(self):
        ranked = rank_replicas(("a", "b", "c", "d"), suspects={"a", "c"})
        assert ranked == ("b", "d", "a", "c")

    def test_preferred_replicas_rank_first(self):
        ranked = rank_replicas(("a", "b", "c"), prefer=lambda r: r == "c")
        assert ranked == ("c", "a", "b")

    def test_local_but_suspect_ranks_with_the_suspects(self):
        # A flapping co-located node is a bad first choice.
        ranked = rank_replicas(
            ("a", "b", "c"), prefer=lambda r: r == "a", suspects={"a"}
        )
        assert ranked == ("b", "c", "a")

    def test_all_signals_compose(self):
        ranked = rank_replicas(
            ("a", "b", "c", "d"), prefer=lambda r: r == "d", suspects={"b"}
        )
        assert ranked == ("d", "a", "c", "b")


class TestCounterDocumentation:
    """Every ReadStats/WriteResult counter must carry a ``#:`` doc comment.

    The counters are the repo's observable contract (the benchmarks pin
    them); an undocumented field is a field whose semantics the next PR
    will silently change.
    """

    @staticmethod
    def documented_fields(cls) -> set[str]:
        """Field names whose definition is directly preceded by a ``#:``
        doc-comment block in the class source."""
        lines = inspect.getsource(cls).splitlines()
        documented = set()
        for index, line in enumerate(lines):
            match = re.match(r"\s+(\w+)\s*:", line)
            if match is None:
                continue
            if index > 0 and lines[index - 1].lstrip().startswith("#:"):
                documented.add(match.group(1))
        return documented

    def test_every_read_counter_is_documented(self):
        names = {field.name for field in dataclasses.fields(ReadStats)}
        missing = names - self.documented_fields(ReadStats)
        assert not missing, f"undocumented ReadStats fields: {sorted(missing)}"

    def test_every_write_counter_is_documented(self):
        names = {field.name for field in dataclasses.fields(WriteResult)}
        missing = names - self.documented_fields(WriteResult)
        assert not missing, f"undocumented WriteResult fields: {sorted(missing)}"

    def test_degraded_leaf_reput_divergence_is_documented(self):
        # The one place the event-loop write's trip count may exceed the
        # sync bridge's: reconciling a degraded page re-puts the leaf.
        assert "leaf re-put" in inspect.getsource(WriteResult)

    def test_speculation_contract_is_documented(self):
        source = inspect.getsource(ReadStats)
        # speculation must be documented as metadata-count-preserving...
        assert "speculation never changes that counter" in source
        # ...with the over-fetch counter named as the single exception.
        assert "ONLY counter speculation may change" in source


def _spec_cluster(speculative: bool) -> Cluster:
    return Cluster.in_memory(
        num_data_providers=4,
        num_metadata_providers=4,
        page_size=TEST_PAGE_SIZE,
        speculative_prefetch=speculative,
    )


_SPECULATIVE_FIELDS = ("speculative_hits", "speculative_wasted")


def _strip_speculation(outcome):
    if isinstance(outcome, tuple):  # (data, ReadStats)
        data, stats = outcome
        return data, dataclasses.replace(
            stats, **{name: 0 for name in _SPECULATIVE_FIELDS}
        )
    return outcome  # WriteResult: speculation has no write-side counters


class TestSpeculationIsInvisible:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(operations=history_strategy)
    def test_only_speculative_counters_may_differ(self, operations):
        """The invisibility property: the same random history against a
        speculating and a non-speculating store yields byte-identical reads
        and field-for-field identical counters — ``metadata_nodes_fetched``
        included, because a consumed prediction IS the level's fetch — with
        only the ``speculative_*`` pair allowed to differ."""

        async def run(speculative: bool):
            async with AsyncBlobStore(
                _spec_cluster(speculative),
                node_cache=NodeCache(),
                page_cache=PageCache(),
            ) as store:
                return await _drive_history(store, operations)

        plain = asyncio.run(run(False))
        speculating = asyncio.run(run(True))
        assert len(plain) == len(speculating)
        for base, spec in zip(plain, speculating):
            assert _strip_speculation(spec) == _strip_speculation(base)
            if isinstance(base, tuple):
                # The plain store must report the pair at exactly zero.
                assert base[1].speculative_hits == 0
                assert base[1].speculative_wasted == 0

    def test_deep_cold_read_actually_speculates(self):
        """Guard against the property passing vacuously: a cold multi-level
        read through the pipelined descent must consume predictions, and
        the over-fetch must stay under the shape bound the benchmarks pin
        (wasted < 2x useful)."""
        payload = make_payload(32 * TEST_PAGE_SIZE, seed=11)

        async def cold_read(speculative: bool):
            store = AsyncBlobStore(
                _spec_cluster(speculative),
                cache_metadata=False,
                cache_pages=False,
            )
            blob_id = await store.create()
            version = await store.write(blob_id, payload, 0)
            await store.sync(blob_id, version)
            return await store.read_ex(blob_id, version, 0, len(payload))

        plain_data, plain = asyncio.run(cold_read(False))
        spec_data, spec = asyncio.run(cold_read(True))
        assert spec_data == plain_data == payload
        assert spec.speculative_hits > 0
        assert spec.speculative_wasted < 2 * spec.speculative_hits
        assert spec.metadata_nodes_fetched == plain.metadata_nodes_fetched
        assert spec.metadata_round_trips == plain.metadata_round_trips
        assert plain.speculative_hits == plain.speculative_wasted == 0


class TestPeerCacheGroup:
    def test_peer_hit_excludes_own_cache(self):
        group = PeerCacheGroup()
        mine, theirs = {"k": "stale-own"}, {"k": "peer-value"}
        me = group.join(node_cache=mine, page_cache=None)
        group.join(node_cache=theirs, page_cache=None)
        # Own entries are never probed: the read path already checked them.
        assert me.probe_node("k") == "peer-value"

    def test_miss_returns_none_and_counts_probes(self):
        group = PeerCacheGroup()
        me = group.join(node_cache={}, page_cache={})
        group.join(node_cache={}, page_cache={"p": b"bytes"})
        assert me.probe_node("absent") is None
        assert me.probe_page("p") == b"bytes"
        stats = group.stats()
        assert (stats.node_probes, stats.node_hits) == (1, 0)
        assert (stats.page_probes, stats.page_hits) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_shared_cache_object_is_skipped(self):
        # Two members over ONE process-wide cache: a "peer hit" there would
        # double-count what the own-cache lookup already missed.
        shared = {"k": "v"}
        group = PeerCacheGroup()
        me = group.join(node_cache=shared, page_cache=None)
        group.join(node_cache=shared, page_cache=None)
        assert me.probe_node("k") is None

    def test_leave_is_idempotent_and_stops_serving(self):
        group = PeerCacheGroup()
        me = group.join(node_cache={}, page_cache=None)
        peer = group.join(node_cache={"k": "v"}, page_cache=None)
        assert me.probe_node("k") == "v"
        peer.leave()
        peer.leave()
        assert len(group) == 1
        assert me.probe_node("k") is None

    def test_store_attached_peers_serve_metadata_and_pages(self):
        """End-to-end: a second co-located store reading the same range is
        served by its peer's caches — counted in ``peer_cache_hits``, never
        in ``metadata_nodes_fetched`` — and returns identical bytes."""
        cluster = Cluster.in_memory(
            num_data_providers=4,
            num_metadata_providers=4,
            page_size=TEST_PAGE_SIZE,
        )
        group = PeerCacheGroup()
        payload = make_payload(8 * TEST_PAGE_SIZE, seed=21)

        async def scenario():
            # Each client brings ITS OWN caches (the cluster-shared default
            # would make the two stores indistinguishable — and the group
            # rightly skips identical cache objects).
            async with AsyncBlobStore(
                cluster,
                peer_group=group,
                node_cache=NodeCache(),
                page_cache=PageCache(),
            ) as warm:
                blob_id = await warm.create()
                version = await warm.write(blob_id, payload, 0)
                await warm.sync(blob_id, version)
                await warm.read(blob_id, version, 0, len(payload))
                async with AsyncBlobStore(
                    cluster,
                    peer_group=group,
                    node_cache=NodeCache(),
                    page_cache=PageCache(),
                ) as cold:
                    return await cold.read_ex(blob_id, version, 0, len(payload))

        data, stats = asyncio.run(scenario())
        assert data == payload
        assert stats.peer_cache_hits > 0
        # Peer-served items never travelled from the DHT or a provider.
        assert stats.metadata_nodes_fetched == 0
        assert stats.data_round_trips == 0

    def test_peer_caching_off_makes_an_attached_group_inert(self):
        cluster = Cluster.in_memory(
            num_data_providers=4,
            num_metadata_providers=4,
            page_size=TEST_PAGE_SIZE,
            peer_caching=False,
        )
        group = PeerCacheGroup()
        payload = make_payload(2 * TEST_PAGE_SIZE, seed=22)

        async def scenario():
            async with AsyncBlobStore(cluster, peer_group=group) as warm:
                blob_id = await warm.create()
                version = await warm.write(blob_id, payload, 0)
                await warm.sync(blob_id, version)
                async with AsyncBlobStore(cluster, peer_group=group) as cold:
                    return await cold.read_ex(blob_id, version, 0, len(payload))

        _data, stats = asyncio.run(scenario())
        assert stats.peer_cache_hits == 0
        assert len(group) == 0  # nobody joined


class _RecordingProvider(DataProvider):
    """DataProvider that logs which batched fetches reached it."""

    def __init__(self, provider_id: str, log: list):
        super().__init__(provider_id)
        self._log = log

    def multi_fetch_into(self, requests):
        self._log.append(self.provider_id)
        return super().multi_fetch_into(requests)


class TestRequeueRerank:
    """Satellite regression: a provider suspected DURING a read's earlier
    wave must be tried LAST when a failed-over request re-enters the queue,
    not walked into in recorded replica order."""

    @staticmethod
    def build(routing: bool):
        log: list[str] = []
        manager = ProviderManager(
            health=ProviderHealth(suspect_after=1), routing=routing
        )
        providers = {
            pid: _RecordingProvider(pid, log) for pid in ("p0", "p1", "p2")
        }
        for provider in providers.values():
            manager.register(provider)
            provider.store_page("page-x", b"x" * PAGE)
        providers["p1"].store_page("page-y", b"y" * PAGE)
        providers["p2"].store_page("page-y", b"y" * PAGE)
        # p0 and p1 die together; the first wave discovers both.
        providers["p0"].kill()
        providers["p1"].kill()
        return manager, log

    @staticmethod
    def fetch(manager):
        out_x, out_y = bytearray(PAGE), bytearray(PAGE)
        tally = FaultTally()
        trips = manager.multi_fetch_into(
            [
                ("p0", "page-x", 0, memoryview(out_x)),
                ("p1", "page-y", 0, memoryview(out_y)),
            ],
            failover=[("p0", "p1", "p2"), ("p1", "p2")],
            fault_tally=tally,
        )
        assert bytes(out_x) == b"x" * PAGE
        assert bytes(out_y) == b"y" * PAGE
        return trips, tally

    def test_suspected_provider_is_tried_last_on_requeue(self):
        manager, log = self.build(routing=True)
        trips, tally = self.fetch(manager)
        # Wave 1 (p0, p1) fails and marks both suspect; page-x's untried
        # tail (p1, p2) is re-ranked to (p2, p1), so wave 2 is ONE batch to
        # the healthy p2 serving both pages — p1 is never asked again.
        assert log == ["p0", "p1", "p2"]
        assert trips == 3
        assert tally.failovers == 2
        assert tally.degraded == 2
        assert manager.health.suspects() == frozenset({"p0", "p1"})

    def test_without_routing_the_recorded_order_walks_into_the_suspect(self):
        manager, log = self.build(routing=False)
        trips, tally = self.fetch(manager)
        # page-x hops p0 -> p1 (already known dead) -> p2: one extra failed
        # wave and one extra failover — the cost the re-rank removes.
        assert log.count("p1") == 2
        assert trips == 5
        assert tally.failovers == 3


class TestDHTReplicaRouting:
    def test_suspect_bucket_is_ranked_last_until_it_serves(self):
        dht = DHT(num_buckets=6, replication=3, routing=True)
        dht.put("key", "value")
        primary, *secondaries = dht.buckets_for("key")
        dht.kill_bucket(primary)
        # The failed lookup serves from a secondary and learns suspicion.
        assert dht.get("key") == "value"
        assert dht._ranked_buckets_for("key")[-1] == primary
        # Suspicion clears the moment the revived bucket serves again —
        # here it must, because every other replica is down.
        dht.revive_bucket(primary)
        for bucket_id in secondaries:
            dht.kill_bucket(bucket_id)
        assert dht.get("key") == "value"
        assert dht._ranked_buckets_for("key")[0] == primary

    def test_routing_off_never_reorders(self):
        dht = DHT(num_buckets=6, replication=3, routing=False)
        dht.put("key", "value")
        primary = dht.buckets_for("key")[0]
        dht.kill_bucket(primary)
        assert dht.get("key") == "value"
        assert dht._ranked_buckets_for("key") == tuple(dht.buckets_for("key"))

    def test_try_multi_get_steers_around_a_suspect_bucket(self):
        dht = DHT(num_buckets=4, replication=2, routing=True)
        items = [(f"key-{index}", index) for index in range(16)]
        dht.multi_put(items)
        victim = dht.bucket_ids()[0]
        dht.kill_bucket(victim)
        for _ in range(2):  # second pass runs with suspicion learned
            values = dht.try_multi_get([key for key, _value in items])
            assert values == [value for _key, value in items]


_SIM_KWARGS = dict(
    num_provider_nodes=8,
    page_size=64 * KiB,
    blob_bytes=32 * MiB,
    chunk_bytes=2 * MiB,
    reader_counts=[4],
    co_locate_clients=True,
)


def _sim_sample(**overrides):
    return run_read_concurrency_experiment(**{**_SIM_KWARGS, **overrides})[0]


class TestSimColdPath:
    def test_unreplicated_routing_and_peers_are_bit_identical_no_ops(self):
        """The perf-gate invariant: with nothing replicated and no shared
        pages, turning routing and peer probing on must not move a single
        counter or timing — the knobs only add signals, never costs."""
        off = _sim_sample(replica_routing=False, peer_caching=False)
        on = _sim_sample(replica_routing=True, peer_caching=True)
        assert on.avg_bandwidth_mbps == off.avg_bandwidth_mbps
        assert on.avg_meta_latency == off.avg_meta_latency
        assert on.avg_data_round_trips == off.avg_data_round_trips
        assert on.peer_cache_hit_rate == 0.0

    def test_speculation_moves_latency_but_not_counters(self):
        base = _sim_sample(speculative_prefetch=False)
        spec = _sim_sample(speculative_prefetch=True)
        assert spec.avg_metadata_nodes_fetched == base.avg_metadata_nodes_fetched
        assert spec.avg_metadata_round_trips == base.avg_metadata_round_trips
        assert spec.avg_data_round_trips == base.avg_data_round_trips
        assert spec.avg_meta_latency < base.avg_meta_latency
        assert spec.speculative_hit_rate > 0.9
        assert base.speculative_hit_rate == 0.0

    def test_replica_routing_serves_local_replicas(self):
        """With pages replicated and clients co-located, routing prefers the
        co-located replica: fewer provider round trips, faster reads."""
        off = _sim_sample(page_replication=4, replica_routing=False)
        on = _sim_sample(page_replication=4, replica_routing=True)
        assert on.avg_data_round_trips < off.avg_data_round_trips
        assert on.avg_bandwidth_mbps > off.avg_bandwidth_mbps

    def test_peer_page_source_spreads_load_over_holders(self):
        """When several machines hold a range, different requesters must
        not all pick the same holder (the first-cacher would melt)."""
        deployment = SimDeployment(
            num_provider_nodes=6, co_locate_clients=True
        )
        cache_key = ("blob", 1, 0, deployment.config.page_size)
        holders = [deployment.client_node(index) for index in range(4)]
        from repro.cache.page_cache import VirtualPagePayload

        for node in holders:
            deployment.page_cache_for(node).put(
                cache_key, VirtualPagePayload(deployment.config.page_size)
            )
        requesters = [deployment.client_node(index) for index in range(4, 6)]
        chosen = {
            deployment.peer_page_source(cache_key, node).name
            for node in requesters
        }
        assert len(chosen) > 1  # load diffuses over the holder set
        for node in requesters:  # and each requester's pick is stable
            first = deployment.peer_page_source(cache_key, node)
            assert deployment.peer_page_source(cache_key, node) is first

    def test_peer_source_never_returns_the_requester(self):
        deployment = SimDeployment(num_provider_nodes=4, co_locate_clients=True)
        cache_key = ("blob", 1, 0, deployment.config.page_size)
        me = deployment.client_node(0)
        from repro.cache.page_cache import VirtualPagePayload

        deployment.page_cache_for(me).put(
            cache_key, VirtualPagePayload(deployment.config.page_size)
        )
        assert deployment.peer_page_source(cache_key, me) is None
