"""Tests for the metadata wire format and the encoding MetadataProvider."""

import pytest
from hypothesis import given, strategies as st

from repro import BlobStore, Cluster
from repro.config import BlobSeerConfig
from repro.dht.dht import DHT
from repro.errors import MetadataNotFoundError
from repro.metadata.metadata_provider import MetadataProvider
from repro.metadata.node import InnerNode, LeafNode, NodeKey
from repro.metadata.serialization import (
    decode_key,
    decode_node,
    encode_key,
    encode_node,
    encoded_size,
)

from .conftest import TEST_PAGE_SIZE, make_payload

identifiers = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Nd"), whitelist_characters="-_"
    ),
    min_size=1,
    max_size=40,
)


class TestNodeRoundTrip:
    def test_leaf_roundtrip(self):
        leaf = LeafNode("page-00000042", "data-0003", 65536)
        assert decode_node(encode_node(leaf)) == leaf

    def test_inner_roundtrip_with_dangling_child(self):
        inner = InnerNode(17, None)
        assert decode_node(encode_node(inner)) == inner

    @given(page_id=identifiers, provider_id=identifiers,
           length=st.integers(0, 2**32 - 1))
    def test_leaf_roundtrip_property(self, page_id, provider_id, length):
        leaf = LeafNode(page_id, provider_id, length)
        assert decode_node(encode_node(leaf)) == leaf

    @given(
        left=st.one_of(st.none(), st.integers(0, 2**63)),
        right=st.one_of(st.none(), st.integers(0, 2**63)),
    )
    def test_inner_roundtrip_property(self, left, right):
        inner = InnerNode(left, right)
        assert decode_node(encode_node(inner)) == inner

    def test_encoded_size_is_consistent(self):
        leaf = LeafNode("p", "d", 1)
        assert encoded_size(leaf) == len(encode_node(leaf))

    def test_non_node_rejected(self):
        with pytest.raises(TypeError):
            encode_node({"not": "a node"})


class TestDecodeErrors:
    def test_empty_payload(self):
        with pytest.raises(MetadataNotFoundError):
            decode_node(b"")

    def test_unknown_tag(self):
        with pytest.raises(MetadataNotFoundError):
            decode_node(b"X123")

    def test_truncated_leaf(self):
        raw = encode_node(LeafNode("page", "provider", 10))
        with pytest.raises(MetadataNotFoundError):
            decode_node(raw[:-2])

    def test_trailing_bytes_rejected(self):
        raw = encode_node(InnerNode(1, 2)) + b"extra"
        with pytest.raises(MetadataNotFoundError):
            decode_node(raw)

    @given(raw=st.binary(max_size=64))
    def test_arbitrary_bytes_never_crash(self, raw):
        """Malformed payloads raise MetadataNotFoundError, never anything else."""
        try:
            decode_node(raw)
        except MetadataNotFoundError:
            pass


class TestKeyRoundTrip:
    def test_roundtrip(self):
        key = NodeKey("bs-blob-00000007", 12, 64, 32)
        assert decode_key(encode_key(key)) == key

    @given(version=st.integers(0, 2**40), offset=st.integers(0, 2**40),
           size=st.integers(1, 2**40))
    def test_roundtrip_property(self, version, offset, size):
        key = NodeKey("blob-id", version, offset, size)
        assert decode_key(encode_key(key)) == key


class TestEncodingMetadataProvider:
    def test_nodes_are_stored_as_bytes(self):
        dht = DHT(num_buckets=2)
        provider = MetadataProvider(dht, encode_values=True)
        key = NodeKey("blob", 1, 0, 1)
        provider.put_node(key, LeafNode("p", "d", 64))
        raw = dht.get(key.to_string())
        assert isinstance(raw, bytes)
        assert provider.get_node(key) == LeafNode("p", "d", 64)

    def test_full_stack_with_encoded_metadata(self):
        cluster = Cluster(
            BlobSeerConfig(
                page_size=TEST_PAGE_SIZE,
                num_data_providers=4,
                num_metadata_providers=4,
                encode_metadata=True,
            )
        )
        store = BlobStore(cluster)
        blob_id = store.create()
        payload = make_payload(10 * TEST_PAGE_SIZE, seed=3)
        store.append(blob_id, payload)
        version = store.write(blob_id, make_payload(TEST_PAGE_SIZE, seed=4), 0)
        store.sync(blob_id, version)
        assert store.read(blob_id, version, TEST_PAGE_SIZE, 9 * TEST_PAGE_SIZE) == (
            payload[TEST_PAGE_SIZE:]
        )
        assert store.read(blob_id, 1, 0, len(payload)) == payload
