"""Tests for the centralized-metadata and full-copy baselines."""

import pytest

from repro.baselines.centralized import (
    CentralizedMetadataServer,
    run_centralized_read_experiment,
)
from repro.baselines.fullcopy import FullCopyVersionedStore
from repro.config import KiB, MiB
from repro.errors import InvalidRangeError, UnknownBlobError, VersionNotPublishedError
from repro.metadata.node import PageDescriptor

PAGE = 64 * KiB


def descriptors(start, count, version=1):
    return [
        PageDescriptor(index, f"v{version}-p{index}", f"data-{index % 4:04d}", PAGE)
        for index in range(start, start + count)
    ]


class TestCentralizedMetadataServer:
    def test_publish_and_lookup(self):
        server = CentralizedMetadataServer(PAGE)
        server.create_blob("blob")
        version = server.publish_update("blob", descriptors(0, 8), 8 * PAGE)
        assert version == 1
        assert server.latest_version("blob") == 1
        assert server.get_size("blob", 1) == 8 * PAGE
        found = server.lookup("blob", 1, 2 * PAGE, 3 * PAGE)
        assert [d.page_index for d in found] == [2, 3, 4]

    def test_versions_copy_the_whole_table(self):
        server = CentralizedMetadataServer(PAGE)
        server.create_blob("blob")
        server.publish_update("blob", descriptors(0, 8), 8 * PAGE)
        before = server.descriptor_writes
        server.publish_update("blob", descriptors(0, 1, version=2), 8 * PAGE)
        # The flat scheme re-serializes all 8 descriptors for a 1-page update.
        assert server.descriptor_writes - before == 8
        assert server.descriptor_count() == 16
        old = server.lookup("blob", 1, 0, PAGE)
        new = server.lookup("blob", 2, 0, PAGE)
        assert old[0].page_id == "v1-p0"
        assert new[0].page_id == "v2-p0"

    def test_unknown_blob_and_version(self):
        server = CentralizedMetadataServer(PAGE)
        with pytest.raises(UnknownBlobError):
            server.lookup("nope", 1, 0, PAGE)
        server.create_blob("blob")
        with pytest.raises(VersionNotPublishedError):
            server.lookup("blob", 3, 0, PAGE)
        with pytest.raises(VersionNotPublishedError):
            server.get_size("blob", 3)

    def test_read_experiment_shows_server_bottleneck(self):
        samples = run_centralized_read_experiment(
            num_provider_nodes=16, page_size=PAGE, blob_bytes=128 * MiB,
            chunk_bytes=4 * MiB, reader_counts=[1, 16],
        )
        single, many = samples
        assert many.avg_bandwidth_mbps < single.avg_bandwidth_mbps
        assert many.metadata_requests > single.metadata_requests


class TestFullCopyVersionedStore:
    def test_append_write_read_roundtrip(self):
        store = FullCopyVersionedStore()
        v1 = store.append(b"hello ")
        v2 = store.append(b"world")
        v3 = store.write(b"W", 6)
        assert (v1, v2, v3) == (1, 2, 3)
        assert store.read(2, 0, 11) == b"hello world"
        assert store.read(3, 0, 11) == b"hello World"
        assert store.get_recent() == 3
        assert store.get_size(1) == 6

    def test_write_beyond_end_rejected(self):
        store = FullCopyVersionedStore()
        store.append(b"abc")
        with pytest.raises(InvalidRangeError):
            store.write(b"x", 10)

    def test_read_validation(self):
        store = FullCopyVersionedStore()
        store.append(b"abc")
        with pytest.raises(VersionNotPublishedError):
            store.read(5, 0, 1)
        with pytest.raises(InvalidRangeError):
            store.read(1, 2, 5)

    def test_empty_write_rejected(self):
        with pytest.raises(InvalidRangeError):
            FullCopyVersionedStore().write(b"", 0)

    def test_bytes_stored_grows_linearly_with_versions(self):
        store = FullCopyVersionedStore()
        store.append(b"x" * 1000)
        for _ in range(4):
            store.write(b"y", 0)
        # 5 versions of ~1000 bytes each (plus the empty version 0).
        assert store.bytes_stored() == 5 * 1000
        assert store.version_count() == 6
