"""Tests for the shared metadata cache subsystem (:mod:`repro.cache`).

Four concerns:

* the :class:`NodeCache` data structure itself — LRU eviction order, entry
  and byte budget enforcement, batched lookups, and behaviour under
  concurrent readers;
* the sharing semantics — two ``BlobStore`` instances on one cluster warm
  each other, clusters sharing the process-wide default cache stay isolated
  through their namespaces, and GC invalidates what it deletes;
* end-to-end correctness — a property test drives random APPEND / WRITE /
  BRANCH histories and checks warm-cache reads are byte-identical to
  cold-cache reads, including under eviction pressure from a tiny budget;
* the structured stats — :class:`CacheStats` arithmetic and the deprecated
  positional tuple shim.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import BlobStore, CacheStats, Cluster, NodeCache
from repro.errors import ConfigurationError, MetadataNotFoundError
from repro.cache import node_weight, shared_node_cache
from repro.metadata.node import InnerNode, LeafNode
from repro.tools.gc import collect_garbage

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


def small_cluster(**overrides) -> Cluster:
    return Cluster.in_memory(
        num_data_providers=4, num_metadata_providers=4, page_size=PAGE,
        **overrides,
    )


class TestLRUSemantics:
    def test_eviction_follows_recency_order(self):
        cache = NodeCache(max_entries=3, shards=1)
        node = InnerNode(1, 1)
        cache.put("a", node)
        cache.put("b", node)
        cache.put("c", node)
        assert cache.get("a") is node          # refresh: a is now most recent
        cache.put("d", node)                   # evicts b, the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") is node
        assert cache.get("c") is node
        assert cache.get("d") is node
        assert cache.stats().evictions == 1

    def test_reinsert_refreshes_recency_without_double_counting(self):
        cache = NodeCache(max_entries=2, shards=1)
        node = InnerNode(1, None)
        cache.put("a", node)
        cache.put("b", node)
        bytes_before = cache.bytes_used()
        cache.put("a", node)                   # immutable: refresh, not grow
        assert cache.bytes_used() == bytes_before
        cache.put("c", node)                   # evicts b, not a
        assert cache.get("b") is None
        assert cache.get("a") is node

    def test_byte_budget_enforced(self):
        leaf = LeafNode("page-00000001", "data-0000", PAGE)
        weight = node_weight("k-000", leaf)
        cache = NodeCache(max_entries=10_000, max_bytes=4 * weight, shards=1)
        for index in range(20):
            cache.put(f"k-{index:03d}", leaf)
            assert cache.bytes_used() <= cache.max_bytes
        stats = cache.stats()
        assert stats.entries == 4
        assert stats.evictions == 16
        assert stats.bytes <= cache.max_bytes

    def test_budgets_hold_across_shards(self):
        cache = NodeCache(max_entries=8, shards=4)
        node = InnerNode(2, 3)
        for index in range(100):
            cache.put(("key", index), node)
        # Each shard holds at most its slice, so the whole cache never
        # exceeds the global entry budget.
        assert len(cache) <= cache.max_entries

    def test_get_many_put_many_align_with_keys(self):
        cache = NodeCache(max_entries=64, shards=4)
        node_a, node_b = InnerNode(1, None), InnerNode(None, 2)
        cache.put_many([("a", node_a), ("b", node_b)])
        assert cache.get_many(["missing", "a", "b", "a"]) == [
            None, node_a, node_b, node_a,
        ]
        stats = cache.stats()
        assert stats.hits == 3 and stats.misses == 1

    def test_discard_and_clear(self):
        cache = NodeCache(max_entries=8, shards=2)
        cache.put("a", InnerNode(1, 1))
        assert cache.discard("a") is True
        assert cache.discard("a") is False
        assert cache.get("a") is None
        cache.put("b", InnerNode(1, 1))
        cache.clear()
        assert len(cache) == 0 and cache.bytes_used() == 0

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeCache(max_entries=0)
        with pytest.raises(ConfigurationError):
            NodeCache(max_bytes=0)
        with pytest.raises(ConfigurationError):
            NodeCache(shards=0)

    def test_concurrent_readers_respect_budgets(self):
        cache = NodeCache(max_entries=64, max_bytes=64 * 200, shards=4)
        node = LeafNode("page-x", "data-0", PAGE)
        errors: list[Exception] = []

        def hammer(worker: int) -> None:
            try:
                for round_index in range(300):
                    key = ("k", (worker * 7 + round_index) % 120)
                    if cache.get(key) is None:
                        cache.put(key, node)
                    cache.get_many([("k", i) for i in range(5)])
                    assert cache.bytes_used() <= cache.max_bytes * 2
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        # Invariants after the storm: budgets hold exactly, and the
        # counters are consistent with the occupancy.
        assert stats.entries <= cache.max_entries
        assert stats.bytes <= cache.max_bytes
        assert stats.entries == len(cache)
        assert stats.hits + stats.misses == 8 * 300 * 6


class TestSharingSemantics:
    def test_two_stores_on_one_cluster_share_hits(self):
        # Non-default budgets give the cluster a dedicated cache, isolating
        # the counters from the process-wide shared instance.
        cluster = small_cluster(metadata_cache_entries=4096)
        first = BlobStore(cluster)
        second = BlobStore(cluster)
        blob_id = first.create()
        payload = make_payload(16 * PAGE)
        version = first.append(blob_id, payload)
        second.sync(blob_id, version)
        gets_before = cluster.dht.stats().gets
        data, stats = second.read_ex(blob_id, version, 0, len(payload))
        # The writer's publish-time write-through warms the OTHER store.
        assert data == payload
        assert stats.metadata_nodes_fetched == 0
        assert stats.metadata_cache_hits > 0
        assert cluster.dht.stats().gets == gets_before
        assert first.cache_stats() == second.cache_stats()
        assert second.cache_stats().hits >= stats.metadata_cache_hits

    def test_default_clusters_share_the_process_wide_cache(self):
        one, two = small_cluster(), small_cluster()
        assert one.node_cache is two.node_cache is shared_node_cache()
        # ...but namespaces keep them apart: both clusters generate the same
        # blob ids and tree shapes, yet each reads back its own bytes.
        store_one, store_two = BlobStore(one), BlobStore(two)
        blob_one, blob_two = store_one.create(), store_two.create()
        assert blob_one == blob_two  # same id generator, same first id
        payload_one = make_payload(8 * PAGE, seed=1)
        payload_two = make_payload(8 * PAGE, seed=2)
        store_one.sync(blob_one, store_one.append(blob_one, payload_one))
        store_two.sync(blob_two, store_two.append(blob_two, payload_two))
        assert store_one.read(blob_one, 1, 0, len(payload_one)) == payload_one
        assert store_two.read(blob_two, 1, 0, len(payload_two)) == payload_two

    def test_private_store_cache_stays_cold_for_others(self):
        cluster = small_cluster(metadata_cache_entries=4096)
        private = BlobStore(cluster, node_cache=NodeCache())
        shared = BlobStore(cluster)
        blob_id = private.create()
        version = private.append(blob_id, make_payload(8 * PAGE))
        shared.sync(blob_id, version)
        # The private store warmed only its own cache.
        _, stats = shared.read_ex(blob_id, version, 0, 8 * PAGE)
        assert stats.metadata_nodes_fetched > 0

    def test_gc_invalidates_collected_nodes(self):
        cluster = small_cluster(metadata_cache_entries=4096)
        store = BlobStore(cluster)
        blob_id = store.create()
        store.append(blob_id, make_payload(4 * PAGE, seed=1))
        # A full overwrite: v2 shares nothing with v1, so collecting down to
        # v2 reclaims v1's entire tree.
        replacement = make_payload(4 * PAGE, seed=2)
        version = store.write(blob_id, replacement, 0)
        store.sync(blob_id, version)
        store.read(blob_id, 1, 0, 4 * PAGE)  # warm v1's nodes
        collect_garbage(cluster, {blob_id: [version]})
        # Without invalidation the cached v1 tree would wrongly satisfy the
        # metadata traversal of the collected snapshot.
        with pytest.raises(MetadataNotFoundError):
            store.read(blob_id, 1, 0, 4 * PAGE)
        assert store.read(blob_id, version, 0, 4 * PAGE) == replacement

    def test_eviction_pressure_keeps_reads_correct(self):
        cluster = small_cluster()
        # A cache far smaller than the tree: every read churns through
        # evictions yet must stay byte-identical.
        tiny = NodeCache(max_entries=8, shards=2)
        store = BlobStore(cluster, node_cache=tiny)
        cold = BlobStore(cluster, cache_metadata=False)
        blob_id = store.create()
        payload = make_payload(32 * PAGE, seed=9)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        for offset, length in [(0, len(payload)), (3 * PAGE, 11 * PAGE), (7, 301)]:
            assert store.read(blob_id, version, offset, length) == \
                cold.read(blob_id, version, offset, length)
        assert len(tiny) <= 8
        assert tiny.stats().evictions > 0


class TestCacheStats:
    def test_hit_rate_and_tuple_shape(self):
        stats = CacheStats(hits=3, misses=1, entries=4, bytes=512, evictions=2)
        assert stats.hit_rate == 0.75
        assert stats.as_tuple() == (3, 1, 4)
        assert CacheStats().hit_rate == 0.0

    def test_structured_stats_reflect_store_traffic(self):
        # The deprecated metadata_cache_stats() tuple shim is gone; the
        # structured CacheStats (and its as_tuple() escape hatch) carry the
        # same information.
        cluster = small_cluster()
        store = BlobStore(cluster, node_cache=NodeCache())
        blob_id = store.create()
        version = store.append(blob_id, make_payload(4 * PAGE))
        store.sync(blob_id, version)
        store.read(blob_id, version, 0, 4 * PAGE)
        stats = store.cache_stats()
        assert not hasattr(store, "metadata_cache_stats")
        assert stats.as_tuple() == (stats.hits, stats.misses, stats.entries)
        assert stats.hits + stats.misses > 0


# --------------------------------------------------------------- property test
operation_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(1, 3 * PAGE), st.integers(0, 255)),
        st.tuples(st.just("write"), st.integers(1, 2 * PAGE), st.integers(0, 255)),
        st.tuples(st.just("branch"), st.integers(0, 8), st.integers(0, 255)),
    ),
    min_size=1,
    max_size=10,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(operations=operation_strategy, data=st.data())
def test_warm_reads_match_cold_reads_across_histories(operations, data):
    """Random APPEND / WRITE / BRANCH histories: every published snapshot
    must read identically through a warm shared cache, a tiny thrashing
    cache, and no cache at all — twice, so the pure-hit path is exercised.
    """
    cluster = Cluster.in_memory(
        num_data_providers=4, num_metadata_providers=4, page_size=PAGE
    )
    warm = BlobStore(cluster, node_cache=NodeCache())
    tiny = BlobStore(cluster, node_cache=NodeCache(max_entries=6, shards=2))
    cold = BlobStore(cluster, cache_metadata=False)

    blobs = [warm.create()]
    for operation, amount, fill in operations:
        blob_id = data.draw(st.sampled_from(blobs))
        recent = warm.get_recent(blob_id)
        if operation == "append":
            warm.sync(blob_id, warm.append(blob_id, bytes([fill]) * amount))
        elif operation == "write":
            size = warm.get_size(blob_id, recent)
            offset = data.draw(st.integers(0, max(size - 1, 0)))
            warm.sync(blob_id, warm.write(blob_id, bytes([fill]) * amount, offset))
        else:
            if recent > 0:
                version = data.draw(st.integers(1, recent))
                blobs.append(warm.branch(blob_id, version))

    for blob_id in blobs:
        for version in range(1, warm.get_recent(blob_id) + 1):
            size = warm.get_size(blob_id, version)
            expected = cold.read(blob_id, version, 0, size)
            for _ in range(2):  # second pass hits the warm/thrashed caches
                assert warm.read(blob_id, version, 0, size) == expected
                assert tiny.read(blob_id, version, 0, size) == expected
