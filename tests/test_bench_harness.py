"""Tests for the benchmark harness: result formatting, CLI, shape helpers.

The heavy experiment content itself is covered by the ``benchmarks/`` suite;
here we verify the harness plumbing with the smallest presets.
"""

import json

import pytest

from repro.bench.ablations import run_ablation_coldpath
from repro.bench.cli import _baseline_rows, _print_deltas, build_parser, main
from repro.bench.fig2a import run_fig2a, shape_checks as fig2a_checks
from repro.bench.fig2b import run_fig2b, shape_checks as fig2b_checks
from repro.bench.runner import ExperimentResult, check_scale, format_table


class TestRunnerHelpers:
    def test_check_scale(self):
        assert check_scale("small") == "small"
        with pytest.raises(ValueError):
            check_scale("enormous")

    def test_format_table_alignment_and_notes(self):
        result = ExperimentResult("T-1", "A title")
        result.add(alpha=1, beta=2.34567, gamma="x")
        result.add(alpha=100, beta=None, gamma="longer")
        result.note("something to remember")
        text = result.format()
        lines = text.splitlines()
        assert lines[0] == "== T-1: A title =="
        assert "alpha" in lines[1] and "beta" in lines[1]
        assert "2.35" in text          # floats are rounded
        assert "-" in lines[4]         # None rendered as a dash
        assert text.endswith("note: something to remember")

    def test_format_table_without_rows(self):
        result = ExperimentResult("T-2", "Empty")
        assert format_table(result) == "== T-2: Empty =="


class TestFigureHarnesses:
    def test_fig2a_small_scale_shape(self):
        result = run_fig2a("small")
        checks = fig2a_checks(result)
        assert all(checks.values()), checks

    def test_fig2b_small_scale_shape(self):
        result = run_fig2b("small")
        checks = fig2b_checks(result)
        assert all(checks.values()), checks
        # The cold-path columns (DESIGN.md §9) must be present and sane:
        # speculation's over-fetch bound is also a named shape check.
        assert {
            "speculation_overfetch_bounded",
            "speculation_mostly_useful",
        } <= checks.keys()
        for row in result.rows:
            assert row["cold_meta_latency"] > 0.0
            assert 0.0 <= row["speculative_hit_rate"] <= 1.0
            assert row["peer_cache_hit_rate"] == 0.0  # disjoint chunks

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_fig2a("galactic")


class TestColdPathAblation:
    """ABL-coldpath pins the acceptance claims of the cold-path PR: each
    piece individually non-regressing, the peer probe free when useless,
    and the hot-page flash crowd genuinely served by peers."""

    @pytest.fixture(scope="class")
    def rows(self):
        result = run_ablation_coldpath("small")
        return {
            (row["workload"], row["regime"]): row for row in result.rows
        }

    def test_each_piece_is_individually_non_regressing(self, rows):
        base = rows[("disjoint-chunks", "baseline")]
        for regime in ("+prefetch", "+routing", "+peer", "all-on"):
            row = rows[("disjoint-chunks", regime)]
            assert row["avg_bandwidth_mbps"] >= base["avg_bandwidth_mbps"]

    def test_prefetch_cuts_cold_metadata_latency(self, rows):
        base = rows[("disjoint-chunks", "baseline")]
        spec = rows[("disjoint-chunks", "+prefetch")]
        assert spec["cold_meta_latency"] < base["cold_meta_latency"]
        assert spec["speculative_hit_rate"] >= 0.9

    def test_routing_cuts_provider_trips(self, rows):
        base = rows[("disjoint-chunks", "baseline")]
        routed = rows[("disjoint-chunks", "+routing")]
        assert routed["data_trips_per_read"] < base["data_trips_per_read"]

    def test_useless_peer_probing_is_free(self, rows):
        # Disjoint readers never share pages: +peer must be BIT-identical
        # to the baseline, proving the probe itself costs nothing.
        base = rows[("disjoint-chunks", "baseline")]
        peer = rows[("disjoint-chunks", "+peer")]
        assert peer == {**base, "regime": "+peer"}

    def test_hot_page_flash_crowd_is_served_by_peers(self, rows):
        off = rows[("hot-page", "peer-off")]
        on = rows[("hot-page", "peer-on")]
        assert on["peer_cache_hit_rate"] == 1.0
        assert on["data_trips_per_read"] == 0.0
        assert on["avg_bandwidth_mbps"] > off["avg_bandwidth_mbps"]


class TestCli:
    def test_parser_accepts_known_experiments(self):
        args = build_parser().parse_args(["fig2a", "--scale", "small"])
        assert args.experiment == "fig2a"
        assert args.scale == "small"

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9z"])

    def test_main_runs_one_experiment(self, capsys):
        assert main(["ablation-space", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "ABL-space" in output
        assert "fullcopy_bytes" in output


class TestBaselineDeltas:
    """The ``--baseline BENCH_prN.json`` delta table of the CLI."""

    @staticmethod
    def snapshot(tmp_path, rows):
        path = tmp_path / "BENCH_test.json"
        path.write_text(
            json.dumps(
                {"scales": {"small": {"fig2b_rows": {"after": rows}}}}
            )
        )
        return path

    def test_baseline_rows_prefers_the_after_side(self, tmp_path):
        path = self.snapshot(tmp_path, [{"readers": 1, "x": 2.0}])
        assert _baseline_rows(path, "fig2b", "small") == [
            {"readers": 1, "x": 2.0}
        ]
        # An uncovered experiment/scale is a None, not an error.
        assert _baseline_rows(path, "fig2a", "small") is None
        assert _baseline_rows(path, "fig2b", "paper") is None

    def test_unreadable_baseline_is_a_clean_exit(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot read baseline"):
            _baseline_rows(bad, "fig2b", "small")

    def test_print_deltas_matches_rows_and_formats_percentages(self, capsys):
        baseline = [{"readers": 1, "avg_bandwidth_mbps": 100.0}]
        current = [
            {"readers": 1, "avg_bandwidth_mbps": 125.0},
            {"readers": 99, "avg_bandwidth_mbps": 1.0},  # unmatched: skipped
        ]
        _print_deltas("fig2b", current, baseline)
        output = capsys.readouterr().out
        assert "[readers=1]" in output
        assert "+25.0%" in output
        assert "readers=99" not in output

    def test_main_reports_a_baseline_without_rows(self, tmp_path, capsys):
        path = self.snapshot(tmp_path, [{"readers": 1}])
        assert (
            main(
                ["ablation-space", "--scale", "small", "--baseline", str(path)]
            )
            == 0
        )
        assert "no ablation-space rows" in capsys.readouterr().out
