"""Tests for the benchmark harness: result formatting, CLI, shape helpers.

The heavy experiment content itself is covered by the ``benchmarks/`` suite;
here we verify the harness plumbing with the smallest presets.
"""

import pytest

from repro.bench.cli import build_parser, main
from repro.bench.fig2a import run_fig2a, shape_checks as fig2a_checks
from repro.bench.fig2b import run_fig2b, shape_checks as fig2b_checks
from repro.bench.runner import ExperimentResult, check_scale, format_table


class TestRunnerHelpers:
    def test_check_scale(self):
        assert check_scale("small") == "small"
        with pytest.raises(ValueError):
            check_scale("enormous")

    def test_format_table_alignment_and_notes(self):
        result = ExperimentResult("T-1", "A title")
        result.add(alpha=1, beta=2.34567, gamma="x")
        result.add(alpha=100, beta=None, gamma="longer")
        result.note("something to remember")
        text = result.format()
        lines = text.splitlines()
        assert lines[0] == "== T-1: A title =="
        assert "alpha" in lines[1] and "beta" in lines[1]
        assert "2.35" in text          # floats are rounded
        assert "-" in lines[4]         # None rendered as a dash
        assert text.endswith("note: something to remember")

    def test_format_table_without_rows(self):
        result = ExperimentResult("T-2", "Empty")
        assert format_table(result) == "== T-2: Empty =="


class TestFigureHarnesses:
    def test_fig2a_small_scale_shape(self):
        result = run_fig2a("small")
        checks = fig2a_checks(result)
        assert all(checks.values()), checks

    def test_fig2b_small_scale_shape(self):
        result = run_fig2b("small")
        checks = fig2b_checks(result)
        assert all(checks.values()), checks

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_fig2a("galactic")


class TestCli:
    def test_parser_accepts_known_experiments(self):
        args = build_parser().parse_args(["fig2a", "--scale", "small"])
        assert args.experiment == "fig2a"
        assert args.scale == "small"

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9z"])

    def test_main_runs_one_experiment(self, capsys):
        assert main(["ablation-space", "--scale", "small"]) == 0
        output = capsys.readouterr().out
        assert "ABL-space" in output
        assert "fullcopy_bytes" in output
