"""Unit tests for configuration validation."""

import pytest

from repro.config import (
    BlobSeerConfig,
    DeploymentPlan,
    GRID5000_PROFILE,
    SimConfig,
    is_power_of_two,
)
from repro.errors import ConfigurationError


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 65536, 2**30])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -4, 3, 6, 65535])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestBlobSeerConfig:
    def test_defaults_are_valid(self):
        config = BlobSeerConfig()
        assert config.page_size == 64 * 1024
        assert config.replication == 1

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(page_size=1000)

    def test_replication_bounded_by_providers(self):
        with pytest.warns(DeprecationWarning), pytest.raises(ConfigurationError):
            BlobSeerConfig(num_data_providers=2, replication=3)

    def test_unknown_allocation_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(allocation_strategy="chaotic")

    def test_unknown_dht_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(dht_strategy="rendezvous")

    def test_update_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(update_timeout=0.0)
        assert BlobSeerConfig(update_timeout=5.0).update_timeout == 5.0

    def test_at_least_one_provider_required(self):
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(num_data_providers=0)
        with pytest.raises(ConfigurationError):
            BlobSeerConfig(num_metadata_providers=0)


class TestSimConfig:
    def test_grid5000_profile_matches_paper_measurements(self):
        assert GRID5000_PROFILE.nic_bandwidth == pytest.approx(117.5 * 1024 * 1024)
        assert GRID5000_PROFILE.latency == pytest.approx(0.1e-3)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(nic_bandwidth=-1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(latency=-0.1)

    def test_negative_overheads_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(rpc_overhead=-1e-3)
        with pytest.raises(ConfigurationError):
            SimConfig(metadata_rpc_overhead=-1e-3)


class TestDeploymentPlan:
    def test_paper_layout(self):
        plan = DeploymentPlan(num_provider_nodes=173, clients=175)
        assert plan.num_data_providers == 173
        assert plan.num_metadata_providers == 173

    def test_dedicated_metadata_node(self):
        plan = DeploymentPlan(num_provider_nodes=10, co_deploy_metadata=False)
        assert plan.num_metadata_providers == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeploymentPlan(num_provider_nodes=0)
        with pytest.raises(ConfigurationError):
            DeploymentPlan(clients=0)
