"""Tests of the invariant analyzer (lint rules RPR001–RPR005, suppression
handling, layer-contract data) and the runtime concurrency sanitizer.

Every rule gets a good/bad fixture pair: the bad snippet fires exactly
once at the expected line with the expected rule id, the good twin stays
silent.  The sanitizer's self-tests seed a genuine lock-order inversion
and a lock held across a real suspension and assert both are reported.
"""

from __future__ import annotations

import asyncio
import textwrap
import threading

import pytest

from repro.analysis import (
    LAYER_CONTRACTS,
    RULES,
    analyze_paths,
    analyze_source,
    check_module,
    module_name_for,
)
from repro.analysis.engine import MALFORMED_SUPPRESSION, resolve_import
from repro.analysis.layers import SANS_IO, LayerContract, validate_contracts
from repro.analysis.sanitizer import (
    LockHeldAcrossAwaitError,
    LockOrderViolation,
    LockSanitizer,
)
from repro.config import FEATURE_KNOBS, BlobSeerConfig
from repro.errors import ConfigurationError

REPO_SRC = __file__.rsplit("/tests/", 1)[0] + "/src"


def run_rules(source: str, *, module: str = "repro.sample", path: str = "sample.py"):
    """Lint an in-memory snippet; returns the per-module report."""
    ctx = analyze_source(textwrap.dedent(source), path=path, module=module)
    return check_module(ctx)


def only_finding(report, rule_id: str):
    """Assert the report holds exactly ONE finding, of ``rule_id``."""
    assert [f.rule_id for f in report.findings] == [rule_id], report.findings
    return report.findings[0]


class TestLockHeldAcrossAwait:
    BAD = """\
        import threading

        class Store:
            async def read(self):
                with self._lock:
                    value = await self.fetch()
                return value
        """

    def test_bad_fires_once_at_with_line(self):
        finding = only_finding(run_rules(self.BAD), "RPR001")
        assert finding.line == 5  # the 'with self._lock:' line
        assert "read" in finding.message and "await" in finding.message

    def test_good_release_before_await_is_silent(self):
        report = run_rules(
            """\
            class Store:
                async def read(self):
                    with self._lock:
                        key = self.key
                    return await self.fetch(key)
            """
        )
        assert report.findings == []

    def test_async_with_asyncio_lock_is_exempt(self):
        report = run_rules(
            """\
            class Store:
                async def read(self):
                    async with self._alock:
                        return await self.fetch()
            """
        )
        assert report.findings == []

    def test_await_in_nested_function_not_attributed_to_outer_with(self):
        report = run_rules(
            """\
            class Store:
                async def read(self):
                    with self._lock:
                        async def helper():
                            await self.fetch()
                        self.helper = helper
            """
        )
        assert report.findings == []

    def test_condition_scope_counts_as_lock(self):
        report = run_rules(
            """\
            async def wait_for_publish(state):
                with state.condition:
                    await notify()
            """
        )
        assert only_finding(report, "RPR001").line == 2


class TestBlockingCallInCoroutine:
    BAD = """\
        import time

        async def backoff(delay):
            time.sleep(delay)
        """

    def test_bad_fires_once_at_call_line(self):
        finding = only_finding(run_rules(self.BAD), "RPR002")
        assert finding.line == 4
        assert "time.sleep" in finding.message

    def test_good_blocking_in_plain_def_is_silent(self):
        report = run_rules(
            """\
            import time

            def backoff(delay):
                time.sleep(delay)
            """
        )
        assert report.findings == []

    def test_run_sync_in_coroutine_flagged(self):
        report = run_rules(
            """\
            from repro.aio import run_sync

            async def bridge(coro):
                return run_sync(coro)
            """
        )
        assert only_finding(report, "RPR002").line == 4

    def test_queue_get_in_coroutine_flagged(self):
        report = run_rules(
            """\
            async def drain(self):
                return self._queue.get()
            """
        )
        assert only_finding(report, "RPR002").line == 2

    def test_runtime_seam_module_is_exempt(self):
        report = run_rules(self.BAD, module="repro.aio", path="aio.py")
        assert report.findings == []


class TestSansIOLayerViolation:
    BAD = """\
        from ..providers import ProviderManager

        def plan():
            return ProviderManager
        """

    def test_bad_fires_once_at_import_line(self):
        report = run_rules(
            self.BAD, module="repro.metadata.read_plan", path="read_plan.py"
        )
        finding = only_finding(report, "RPR003")
        assert finding.line == 1
        assert "repro.providers" in finding.message
        assert "sans-io" in finding.message

    def test_good_same_import_outside_layer_is_silent(self):
        report = run_rules(
            self.BAD, module="repro.core.blob_store", path="blob_store.py"
        )
        assert report.findings == []

    def test_absolute_import_and_submodule_from_import_are_caught(self):
        report = run_rules(
            """\
            import repro.fault.retry
            from ..fault import retry
            """,
            module="repro.metadata.build",
            path="build.py",
        )
        assert [f.rule_id for f in report.findings] == ["RPR003", "RPR003"]
        assert [f.line for f in report.findings] == [1, 2]

    def test_sibling_sans_io_imports_stay_legal(self):
        report = run_rules(
            """\
            from ..errors import InvalidRangeError
            from ..util.ranges import intersects
            from .geometry import children_of
            """,
            module="repro.metadata.read_plan",
            path="read_plan.py",
        )
        assert report.findings == []


class TestUngatedFeatureKnob:
    BAD = """\
        def descent(config):
            if config.speculative_prefetch:
                return "pipelined"
        """

    def test_bad_fires_once_at_read_line(self):
        finding = only_finding(run_rules(self.BAD), "RPR004")
        assert finding.line == 2
        assert "feature_enabled" in finding.message

    def test_good_gate_helper_is_silent(self):
        report = run_rules(
            """\
            def descent(config):
                if config.feature_enabled("speculative_prefetch"):
                    return "pipelined"
            """
        )
        assert report.findings == []

    def test_config_module_is_exempt(self):
        report = run_rules(self.BAD, module="repro.config", path="config.py")
        assert report.findings == []

    def test_every_declared_knob_is_guarded(self):
        for knob in FEATURE_KNOBS:
            report = run_rules(f"def f(c):\n    return c.{knob}\n")
            assert only_finding(report, "RPR004").line == 2


class TestUndocumentedStatsCounter:
    BAD = """\
        from dataclasses import dataclass

        @dataclass
        class RepairStats:
            #: Repair passes completed.
            passes: int = 0
            pages_restored: int = 0
        """

    def test_bad_fires_once_at_field_line(self):
        finding = only_finding(run_rules(self.BAD), "RPR005")
        assert finding.line == 7
        assert "pages_restored" in finding.message

    def test_good_block_and_inline_docs_are_silent(self):
        report = run_rules(
            """\
            from dataclasses import dataclass

            @dataclass
            class RepairStats:
                #: Repair passes completed.
                #: (multi-line blocks are fine)
                passes: int = 0
                pages_restored: int = 0  #: Pages restored in place.
            """
        )
        assert report.findings == []

    def test_non_stats_class_is_ignored(self):
        report = run_rules(
            """\
            class Plan:
                steps: int = 0
            """
        )
        assert report.findings == []

    def test_write_result_is_covered(self):
        report = run_rules(
            """\
            class WriteResult:
                pages_written: int = 0
            """
        )
        assert only_finding(report, "RPR005").line == 2


class TestSuppressions:
    def test_exact_rule_noqa_suppresses(self):
        report = run_rules(
            """\
            import time

            async def backoff(delay):
                time.sleep(delay)  # repro: noqa(RPR002) -- test seam only
            """
        )
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["RPR002"]

    def test_wrong_rule_id_does_not_suppress(self):
        report = run_rules(
            """\
            import time

            async def backoff(delay):
                time.sleep(delay)  # repro: noqa(RPR001)
            """
        )
        assert [f.rule_id for f in report.findings] == ["RPR002"]

    def test_blanket_noqa_is_itself_a_finding(self):
        report = run_rules(
            """\
            import time

            async def backoff(delay):
                time.sleep(delay)  # repro: noqa
            """
        )
        rule_ids = sorted(f.rule_id for f in report.findings)
        assert rule_ids == [MALFORMED_SUPPRESSION, "RPR002"]

    def test_directive_inside_string_is_inert(self):
        report = run_rules(
            '''\
            DOC = """example:  # repro: noqa(RPR002)"""
            '''
        )
        assert report.findings == []
        assert report.directives == []

    def test_multi_rule_directive(self):
        report = run_rules(
            """\
            import time

            async def poll(self):
                with self._lock: time.sleep(0.1)  # repro: noqa(RPR001, RPR002)
            """
        )
        assert report.findings == []
        assert sorted(f.rule_id for f in report.suppressed) == ["RPR002"]
        assert report.directives[0].rule_ids == ("RPR001", "RPR002")


class TestLayerContractData:
    def test_declarations_validate(self):
        validate_contracts()

    def test_covered_modules_exist_in_tree(self):
        import pathlib

        src = pathlib.Path(REPO_SRC)
        for module in SANS_IO.modules:
            relative = module.replace(".", "/")
            assert (
                (src / f"{relative}.py").exists()
                or (src / relative / "__init__.py").exists()
            ), f"declared sans-IO module {module} does not exist"

    def test_forbidden_prefixes_exist_in_tree(self):
        import pathlib

        src = pathlib.Path(REPO_SRC)
        for module in SANS_IO.forbidden:
            relative = module.replace(".", "/")
            assert (
                (src / f"{relative}.py").exists()
                or (src / relative / "__init__.py").exists()
            ), f"forbidden prefix {module} does not exist"

    def test_overlapping_contract_is_rejected(self):
        import repro.analysis.layers as layers

        bad = LayerContract(
            name="bad",
            rationale="covered module inside forbidden prefix",
            modules=("repro.providers.page_store",),
            forbidden=("repro.providers",),
        )
        original = layers.LAYER_CONTRACTS
        layers.LAYER_CONTRACTS = (bad,)
        try:
            with pytest.raises(ValueError):
                validate_contracts()
        finally:
            layers.LAYER_CONTRACTS = original

    def test_registered_rules_are_the_documented_five(self):
        assert sorted(RULES) == [
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
        ]


class TestEngineResolution:
    def test_module_name_for_resolves_packages(self):
        import pathlib

        src = pathlib.Path(REPO_SRC)
        assert (
            module_name_for(src / "repro/metadata/read_plan.py")
            == "repro.metadata.read_plan"
        )
        assert module_name_for(src / "repro/util/__init__.py") == "repro.util"

    def test_resolve_relative_imports(self):
        assert (
            resolve_import(
                "repro.metadata.build", is_package=False, level=2, target="errors"
            )
            == "repro.errors"
        )
        assert (
            resolve_import(
                "repro.util", is_package=True, level=1, target="ranges"
            )
            == "repro.util.ranges"
        )
        assert (
            resolve_import("repro.core.io", is_package=False, level=1, target=None)
            == "repro.core"
        )

    def test_contract_rationales_cite_design(self):
        for contract in LAYER_CONTRACTS:
            assert contract.rationale


class TestTreeIsClean:
    def test_src_and_benchmarks_are_violation_free(self):
        """The acceptance gate: the committed tree linted clean."""
        repo = REPO_SRC.rsplit("/", 1)[0]
        report = analyze_paths([f"{repo}/src", f"{repo}/benchmarks"])
        assert report.findings == [], [f.render() for f in report.findings]

    def test_cli_exit_codes(self, tmp_path):
        from repro.analysis.__main__ import main

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import time\n\nasync def f():\n    time.sleep(1)\n"
        )
        assert main([str(dirty)]) == 1
        assert main(["--list-rules", str(clean)]) == 0


class TestFeatureGateHelper:
    def test_knobs_are_real_config_fields(self):
        config = BlobSeerConfig()
        for knob in FEATURE_KNOBS:
            assert isinstance(getattr(config, knob), bool)

    def test_feature_enabled_reflects_fields(self):
        config = BlobSeerConfig(speculative_prefetch=True, tracing=False)
        assert config.feature_enabled("speculative_prefetch") is True
        assert config.feature_enabled("tracing") is False
        assert config.feature_enabled("replica_routing") is True

    def test_unknown_knob_raises(self):
        with pytest.raises(ConfigurationError):
            BlobSeerConfig().feature_enabled("speculatve_prefetch")


class TestLockSanitizer:
    def test_seeded_inversion_raises(self):
        sanitizer = LockSanitizer().enable()
        lock_a = sanitizer.wrap(name="A")
        lock_b = sanitizer.wrap(name="B")
        with lock_a:
            with lock_b:
                pass
        with pytest.raises(LockOrderViolation, match="'B'"):
            with lock_b:
                with lock_a:
                    pass
        assert sanitizer.violations == 1

    def test_consistent_order_is_silent(self):
        sanitizer = LockSanitizer().enable()
        lock_a = sanitizer.wrap(name="A")
        lock_b = sanitizer.wrap(name="B")
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert sanitizer.violations == 0
        assert sanitizer.edge_count() == 1

    def test_cross_thread_inversion_detected(self):
        """The graph is process-wide: thread 1 orders A→B, the main thread
        inverts it — reported without the unlucky interleaving."""
        sanitizer = LockSanitizer().enable()
        lock_a = sanitizer.wrap(name="A")
        lock_b = sanitizer.wrap(name="B")

        def worker():
            with lock_a:
                with lock_b:
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        with pytest.raises(LockOrderViolation):
            with lock_b:
                with lock_a:
                    pass

    def test_transitive_cycle_detected(self):
        sanitizer = LockSanitizer().enable()
        lock_a = sanitizer.wrap(name="A")
        lock_b = sanitizer.wrap(name="B")
        lock_c = sanitizer.wrap(name="C")
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_c:
                pass
        with pytest.raises(LockOrderViolation):
            with lock_c:
                with lock_a:
                    pass

    def test_seeded_lock_across_await_raises_and_unwinds(self):
        sanitizer = LockSanitizer().enable()
        lock = sanitizer.wrap(name="held")

        async def bad():
            with lock:
                await asyncio.sleep(0)

        with pytest.raises(LockHeldAcrossAwaitError, match="held"):
            asyncio.run(sanitizer.guard(bad()))
        # The guard closed the coroutine, so the 'with' released the lock.
        assert not lock.locked()

    def test_inline_awaits_do_not_trip_the_guard(self):
        """Awaits that complete without suspending (the run_sync bridge
        pattern) never reach the checkpoint."""
        sanitizer = LockSanitizer().enable()
        lock = sanitizer.wrap(name="inline")

        async def inner():
            return 21

        async def good():
            with lock:
                value = await inner()  # completes inline: no suspension
            await asyncio.sleep(0)
            return value * 2

        assert asyncio.run(sanitizer.guard(good())) == 42

    def test_install_patches_and_uninstall_restores(self):
        real_lock_type = type(threading.Lock())
        sanitizer = LockSanitizer()
        with sanitizer:
            patched = threading.Lock()
            assert type(patched).__name__ == "SanitizedLock"
        assert type(threading.Lock()) is real_lock_type
        # Wrappers created under the sanitizer stay usable after uninstall.
        with patched:
            pass

    def test_condition_wait_keeps_held_stack_exact(self):
        sanitizer = LockSanitizer()
        with sanitizer:
            condition = threading.Condition()
            ready = threading.Event()

            def waiter():
                with condition:
                    ready.set()
                    condition.wait(timeout=2)

            thread = threading.Thread(target=waiter)
            thread.start()
            ready.wait(timeout=2)
            with condition:
                condition.notify_all()
            thread.join(timeout=2)
            assert not thread.is_alive()
            assert sanitizer.held_names() == ()

    def test_reentrant_rlock_is_not_an_ordering(self):
        sanitizer = LockSanitizer()
        with sanitizer:
            rlock = threading.RLock()
            with rlock:
                with rlock:  # reentrant: no self-edge, no violation
                    pass
            assert sanitizer.violations == 0

    def test_sanitized_store_roundtrip(self, lock_sanitizer):
        """Acceptance: a real cluster + store built entirely under the
        sanitizer reads back what it wrote, with zero violations."""
        from repro import BlobStore, Cluster

        cluster = Cluster.in_memory(
            num_data_providers=4, num_metadata_providers=4, page_size=64
        )
        store = BlobStore(cluster, cache_metadata=False, cache_pages=False)
        blob_id = store.create()
        payload = bytes(range(256)) * 2
        version = store.write(blob_id, payload, 0)
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, len(payload)) == payload
        assert lock_sanitizer.violations == 0
        assert lock_sanitizer.lock_count() > 0

    def test_sanitized_async_store_roundtrip(self, lock_sanitizer):
        """The async engine under the sanitizer: gathered reads suspend on
        the loop with no sanitized lock held."""
        from repro import AsyncBlobStore, Cluster

        async def scenario():
            cluster = Cluster.in_memory(
                num_data_providers=4, num_metadata_providers=4, page_size=64
            )
            async with AsyncBlobStore(
                cluster, cache_metadata=False, cache_pages=False
            ) as store:
                blob_id = await store.create()
                payload = b"x" * 512
                version = await store.write(blob_id, payload, 0)
                await store.sync(blob_id, version)
                reads = await asyncio.gather(
                    *(
                        store.read(blob_id, version, 0, len(payload))
                        for _ in range(8)
                    )
                )
                return reads

        reads = asyncio.run(scenario())
        assert all(data == b"x" * 512 for data in reads)
        assert lock_sanitizer.violations == 0
