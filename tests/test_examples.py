"""Smoke tests for the example scripts: each must run end to end."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "async_quickstart",
        "picture_analytics",
        "branching_pipelines",
        "simulated_grid_run",
        "dataset_curation",
        "version_leases",
        "warm_reads",
        "metrics_quickstart",
    ],
)
def test_example_runs_to_completion(name, capsys):
    module = load_example(name)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"example {name} produced no output"


def test_quickstart_demonstrates_versioning(capsys):
    load_example("quickstart").main()
    output = capsys.readouterr().out
    assert "The quick brown fox" in output
    assert "branch" in output


def test_picture_analytics_reports_every_camera_family(capsys):
    load_example("picture_analytics").main()
    output = capsys.readouterr().out
    assert "average contrast" in output
    assert "enhanced the first picture" in output


def test_branching_pipelines_storage_savings(capsys):
    load_example("branching_pipelines").main()
    output = capsys.readouterr().out
    assert "full copies would need" in output


def test_version_leases_demonstrates_zero_trip_reads(capsys):
    load_example("version_leases").main()
    output = capsys.readouterr().out
    assert "vm_round_trips=0 (lease hit)" in output
    assert "rounds saved by group commit" in output


def test_warm_reads_demonstrates_zero_trip_reads(capsys):
    load_example("warm_reads").main()
    output = capsys.readouterr().out
    assert "zero round trips on all three legs" in output
    assert "hit rate 1.00" in output


def test_dataset_curation_reports_and_collects(capsys):
    load_example("dataset_curation").main()
    output = capsys.readouterr().out
    assert "pages added" in output
    assert "cluster report" in output
    assert "reclaimed" in output
    assert "verified readable after collection" in output
