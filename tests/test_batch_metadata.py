"""Tests for the frontier-batched metadata layer.

Three concerns, one per test class:

* equivalence — a frontier-driven READ must return byte-identical data, the
  same descriptors and the same node count as the old one-fetch-per-node
  traversal, while needing only O(log pages) round trips;
* the DHT multi-ops — replica fallback and failure semantics of
  ``multi_get`` / ``multi_put`` must match their per-key counterparts, and
  batches must take each bucket lock once;
* cache accounting — client-side cache hits are served without entering the
  batch, so repeated reads stop touching the DHT entirely.
"""

import math

import pytest

from repro import BlobStore, Cluster, NodeCache
from repro.dht.dht import DHT
from repro.dht.storage import BucketStore
from repro.errors import MetadataNotFoundError, ProviderUnavailableError
from repro.metadata.geometry import pages_for_size, span_for_pages
from repro.metadata.node import Frontier, NodeKey
from repro.metadata.read_plan import drive_plan, multi_range_read_plan, read_plan
from repro.util.ranges import covering_page_range
from repro.version.records import resolve_owner

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


def per_node_read(cluster, blob_id, version, offset, size):
    """Reference READ using one metadata fetch per node (the old protocol).

    ``drive_plan`` with a per-ref ``fetch`` resolves every frontier by
    looping over its refs one DHT get at a time — exactly the pre-frontier
    behaviour.  Returns (data, plan_result).
    """
    vm = cluster.version_manager
    record = vm.get_record(blob_id)
    page_size = record.page_size
    snapshot_size = vm.get_size(blob_id, version)
    page_offset, page_count = covering_page_range(offset, size, page_size)
    span = span_for_pages(pages_for_size(snapshot_size, page_size))

    def fetch(ref):
        owner = resolve_owner(record, ref.version)
        return cluster.metadata_provider.get_node(
            NodeKey(owner, ref.version, ref.offset, ref.size)
        )

    result = drive_plan(read_plan(version, span, page_offset, page_count), fetch)
    buffer = bytearray(size)
    for descriptor in result.sorted_descriptors():
        page_start = descriptor.page_index * page_size
        want_start = max(offset, page_start)
        want_end = min(offset + size, page_start + page_size)
        if want_end <= want_start:
            continue
        chunk = cluster.provider_manager.provider(descriptor.provider_id).fetch_page(
            descriptor.page_id,
            offset=want_start - page_start,
            length=want_end - want_start,
        )
        buffer[want_start - offset:want_start - offset + len(chunk)] = chunk
    return bytes(buffer), result


class TestFrontierEquivalence:
    def _populated(self, store, blob_id):
        """A blob with appends, an aligned overwrite and an unaligned write."""
        store.append(blob_id, make_payload(13 * PAGE + 17, seed=1))
        store.write(blob_id, make_payload(2 * PAGE, seed=2), 3 * PAGE)
        store.append(blob_id, make_payload(5 * PAGE, seed=3))
        version = store.write(blob_id, make_payload(300, seed=4), 7 * PAGE - 50)
        store.sync(blob_id, version)
        return version

    def test_read_matches_per_node_traversal(self, cluster, store, blob_id):
        last = self._populated(store, blob_id)
        for version in range(1, last + 1):
            size = store.get_size(blob_id, version)
            for offset, length in [(0, size), (PAGE + 7, min(size, 6 * PAGE)),
                                   (size - 40, 40)]:
                data, stats = store.read_ex(blob_id, version, offset, length)
                expected, reference = per_node_read(
                    cluster, blob_id, version, offset, length
                )
                assert data == expected
                # Same nodes, same descriptors — only the trip count shrinks.
                assert stats.metadata_nodes_fetched == reference.nodes_fetched
                assert stats.metadata_round_trips <= reference.nodes_fetched
                assert stats.metadata_round_trips == reference.round_trips

    def test_round_trips_are_log_pages(self, store, blob_id):
        version = store.append(blob_id, make_payload(64 * PAGE))
        store.sync(blob_id, version)
        # Single page: one node per level — trips == nodes == depth.
        _, narrow = store.read_ex(blob_id, version, 10 * PAGE, PAGE)
        depth = int(math.log2(64)) + 1
        assert narrow.metadata_nodes_fetched == depth
        assert narrow.metadata_round_trips == depth
        # Whole blob: O(pages) nodes but still O(log pages) trips.
        _, wide = store.read_ex(blob_id, version, 0, 64 * PAGE)
        assert wide.metadata_nodes_fetched == 2 * 64 - 1
        assert wide.metadata_round_trips == depth

    def test_write_round_trips_reported(self, store, blob_id):
        store.append(blob_id, make_payload(8 * PAGE))
        result = store.write_ex(blob_id, make_payload(2 * PAGE, seed=5), 2 * PAGE)
        # Border resolution frontiers plus exactly one batched publish.
        assert result.metadata_round_trips >= 1
        assert result.metadata_round_trips <= int(math.log2(8)) + 2

    def test_multi_range_plan_shares_the_spine(self, cluster, store, blob_id):
        version = store.append(blob_id, make_payload(16 * PAGE))
        store.sync(blob_id, version)
        record = cluster.version_manager.get_record(blob_id)

        def fetch_many(refs):
            return cluster.metadata_provider.get_nodes(
                [
                    NodeKey(
                        resolve_owner(record, ref.version),
                        ref.version, ref.offset, ref.size,
                    )
                    for ref in refs
                ]
            )

        plan = multi_range_read_plan(version, 16, [(0, 1), (15, 1)])
        result = drive_plan(plan, fetch_many=fetch_many)
        assert sorted(d.page_index for d in result.descriptors) == [0, 15]
        # Two root-to-leaf paths of depth 5 share the root: 9 nodes, 5 trips.
        assert result.nodes_fetched == 9
        assert result.round_trips == 5

    def test_empty_and_invalid_ranges(self):
        assert drive_plan(
            multi_range_read_plan(1, 8, []), lambda ref: None
        ).round_trips == 0
        with pytest.raises(Exception):
            drive_plan(multi_range_read_plan(1, 8, [(7, 2)]), lambda ref: None)


class TestDHTMultiOps:
    def _filled(self, num_buckets=6, replication=1, items=24):
        dht = DHT(num_buckets=num_buckets, replication=replication)
        pairs = [(f"key-{index}", index) for index in range(items)]
        dht.multi_put(pairs)
        return dht, pairs

    def test_multi_roundtrip_preserves_order_and_duplicates(self):
        dht, pairs = self._filled()
        keys = [key for key, _ in pairs]
        assert dht.multi_get(keys) == [value for _, value in pairs]
        assert dht.multi_get(["key-3", "key-3", "key-1"]) == [3, 3, 1]

    def test_multi_get_missing_key_raises(self):
        dht, pairs = self._filled()
        with pytest.raises(MetadataNotFoundError):
            dht.multi_get(["key-0", "absent"])

    def test_multi_get_survives_killed_replica(self):
        dht, pairs = self._filled(replication=3)
        keys = [key for key, _ in pairs]
        dht.kill_bucket(dht.buckets_for(keys[0])[0])
        assert dht.multi_get(keys) == [value for _, value in pairs]

    def test_multi_get_unreplicated_killed_bucket_raises(self):
        dht, pairs = self._filled(replication=1)
        victim = dht.buckets_for("key-0")[0]
        dht.kill_bucket(victim)
        with pytest.raises(ProviderUnavailableError):
            dht.multi_get(["key-0"])
        dht.revive_bucket(victim)
        assert dht.multi_get(["key-0"]) == [0]

    def test_multi_put_needs_one_live_replica_per_key(self):
        dht = DHT(num_buckets=3, replication=3)
        for bucket_id in dht.bucket_ids():
            dht.kill_bucket(bucket_id)
        with pytest.raises(ProviderUnavailableError):
            dht.multi_put([("a", 1), ("b", 2)])
        dht.revive_bucket(dht.bucket_ids()[0])
        dht.multi_put([("a", 1), ("b", 2)])  # one live replica is enough
        assert dht.multi_get(["a", "b"]) == [1, 2]

    def test_batches_take_each_bucket_lock_once(self):
        store = BucketStore("meta-0000")
        store.multi_put([(f"k{i}", i) for i in range(10)])
        found, missing = store.multi_get([f"k{i}" for i in range(12)])
        assert len(found) == 10 and missing == ["k10", "k11"]
        stats = store.stats
        assert stats.puts == 10 and stats.batch_puts == 1
        assert stats.gets == 12 and stats.batch_gets == 1
        assert stats.hits == 10 and stats.misses == 2

    def test_dht_stats_aggregate_batches_and_max_keys(self):
        dht, pairs = self._filled(num_buckets=4, items=20)
        dht.multi_get([key for key, _ in pairs])
        stats = dht.stats()
        assert stats.keys == 20
        assert stats.max_keys_per_bucket >= 5  # a real field, no getattr hack
        assert stats.gets == 20
        # One lock acquisition per touched bucket, not one per key.
        assert stats.batch_gets <= 4 < stats.gets
        assert stats.batch_puts <= 4 < stats.puts

    def test_killed_replica_mid_batch_falls_back_key_by_key(self):
        dht = DHT(num_buckets=6, replication=2)
        pairs = [(f"key-{index}", index) for index in range(30)]
        dht.multi_put(pairs)
        # Kill one bucket: keys whose primary it was fall back to their
        # second replica; keys whose secondary it was are unaffected.
        dht.kill_bucket(dht.bucket_ids()[0])
        assert dht.multi_get([key for key, _ in pairs]) == [
            value for _, value in pairs
        ]


class TestCacheAccountingAcrossBatches:
    def _cluster(self):
        return Cluster.in_memory(
            num_data_providers=4, num_metadata_providers=4, page_size=PAGE
        )

    def test_repeat_read_is_served_from_cache(self):
        cluster = self._cluster()
        # A private NodeCache isolates counters from the process-wide shared
        # instance; the appender runs cold so publish-time write-through
        # does not pre-warm the reader under test.
        writer = BlobStore(cluster, cache_metadata=False)
        store = BlobStore(cluster, node_cache=NodeCache())
        blob_id = writer.create()
        version = writer.append(blob_id, make_payload(16 * PAGE))
        store.sync(blob_id, version)

        _, first = store.read_ex(blob_id, version, 0, 16 * PAGE)
        stats = store.cache_stats()
        assert first.metadata_cache_hits == 0
        assert first.metadata_nodes_fetched > 0
        assert stats.hits == 0
        assert stats.misses == first.metadata_nodes_fetched == stats.entries

        gets_before = cluster.dht.stats().gets
        _, second = store.read_ex(blob_id, version, 0, 16 * PAGE)
        stats = store.cache_stats()
        # Same traversal, every node a cache hit: zero DHT traffic, zero
        # round trips, zero nodes fetched.
        assert second.metadata_nodes_fetched == 0
        assert second.metadata_round_trips == 0
        assert second.metadata_cache_hits == first.metadata_nodes_fetched
        assert second.cache.hit_rate == 1.0
        assert stats.hits == first.metadata_nodes_fetched
        assert cluster.dht.stats().gets == gets_before

    def test_write_through_warms_the_writers_own_reads(self):
        cluster = self._cluster()
        store = BlobStore(cluster, node_cache=NodeCache())
        blob_id = store.create()
        result = store.append_ex(blob_id, make_payload(16 * PAGE))
        store.sync(blob_id, result.version)
        gets_before = cluster.dht.stats().gets
        _, stats = store.read_ex(blob_id, result.version, 0, 16 * PAGE)
        # Publish-time write-through: the writer's first read is already warm.
        assert stats.metadata_nodes_fetched == 0
        assert stats.metadata_cache_hits > 0
        assert cluster.dht.stats().gets == gets_before

    def test_partial_overlap_only_fetches_new_nodes(self):
        cluster = self._cluster()
        writer = BlobStore(cluster, cache_metadata=False)
        store = BlobStore(cluster, node_cache=NodeCache())
        blob_id = writer.create()
        version = writer.append(blob_id, make_payload(16 * PAGE))
        store.sync(blob_id, version)

        store.read_ex(blob_id, version, 0, 4 * PAGE)
        entries_before = store.cache_stats().entries
        gets_before = cluster.dht.stats().gets
        _, stats = store.read_ex(blob_id, version, 0, 8 * PAGE)
        new_nodes = store.cache_stats().entries - entries_before
        # Only the nodes not seen by the narrower read enter the batch; the
        # shared spine is served from the cache.
        assert new_nodes == stats.metadata_nodes_fetched > 0
        assert stats.metadata_cache_hits > 0
        assert cluster.dht.stats().gets - gets_before == new_nodes

    def test_parallel_io_batches_give_identical_results(self):
        cluster = self._cluster()
        parallel = BlobStore(cluster, parallel_io=4, node_cache=NodeCache())
        plain = BlobStore(cluster, cache_metadata=False)
        blob_id = parallel.create()
        payload = make_payload(32 * PAGE, seed=7)
        version = parallel.append(blob_id, payload)
        parallel.sync(blob_id, version)
        for _ in range(2):  # second pass reads through the warm cache
            assert parallel.read(blob_id, version, PAGE, 20 * PAGE) == \
                plain.read(blob_id, version, PAGE, 20 * PAGE)

    def test_cached_reads_match_uncached_reads(self):
        cluster = self._cluster()
        cached_store = BlobStore(cluster, node_cache=NodeCache())
        plain_store = BlobStore(cluster, cache_metadata=False)
        blob_id = cached_store.create()
        payload = make_payload(9 * PAGE + 123)
        version = cached_store.append(blob_id, payload)
        cached_store.sync(blob_id, version)
        for offset, length in [(0, len(payload)), (PAGE, 3 * PAGE), (17, 301)]:
            assert (
                cached_store.read(blob_id, version, offset, length)
                == plain_store.read(blob_id, version, offset, length)
                == payload[offset:offset + length]
            )
            # Read twice: the second pass exercises the hit path end-to-end.
            assert cached_store.read(blob_id, version, offset, length) == \
                payload[offset:offset + length]


class TestDrivePlanProtocol:
    def test_frontier_resolved_by_mapping_single_fetch(self):
        def plan():
            nodes = yield Frontier((1, 2, 3))  # refs are opaque to the driver
            return nodes

        assert drive_plan(plan(), lambda ref: ref * 10) == [10, 20, 30]

    def test_frontier_length_mismatch_detected(self):
        def plan():
            yield Frontier((1, 2))
            return "unreachable"

        with pytest.raises(MetadataNotFoundError):
            drive_plan(plan(), fetch_many=lambda refs: [0])

    def test_single_ref_resolved_via_fetch_many(self):
        from repro.metadata.node import NodeRef

        def plan():
            node = yield NodeRef(1, 0, 1)
            return node

        assert drive_plan(plan(), fetch_many=lambda refs: [len(refs)]) == 1

    def test_driver_requires_some_fetcher(self):
        with pytest.raises(TypeError):
            drive_plan(read_plan(1, 4, 0, 4))
