"""Unit and property tests for DHT key placement."""

import pytest
from hypothesis import given, strategies as st

from repro.dht.hashing import (
    ConsistentHashRing,
    StaticPlacement,
    make_placement,
    stable_hash,
)

BUCKETS = [f"meta-{index:04d}" for index in range(16)]


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_salt_changes_value(self):
        assert stable_hash("abc") != stable_hash("abc", salt="vn1:")

    def test_spread(self):
        values = {stable_hash(f"key-{index}") % 16 for index in range(500)}
        assert len(values) == 16  # every bucket index is hit


class TestStaticPlacement:
    def test_requires_buckets(self):
        with pytest.raises(ValueError):
            StaticPlacement([])

    def test_primary_is_deterministic(self):
        placement = StaticPlacement(BUCKETS)
        assert placement.buckets_for("key") == placement.buckets_for("key")

    def test_replicas_are_distinct_and_bounded(self):
        placement = StaticPlacement(BUCKETS)
        replicas = placement.buckets_for("key", replicas=3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3
        assert placement.buckets_for("key", replicas=100) == placement.buckets_for(
            "key", replicas=len(BUCKETS)
        )

    def test_all_buckets(self):
        assert StaticPlacement(BUCKETS).all_buckets() == BUCKETS

    @given(st.text(min_size=1, max_size=50))
    def test_every_key_lands_on_a_known_bucket(self, key):
        placement = StaticPlacement(BUCKETS)
        assert placement.buckets_for(key)[0] in BUCKETS

    def test_keys_spread_over_buckets(self):
        placement = StaticPlacement(BUCKETS)
        hits = {placement.buckets_for(f"blob/{v}/{o}/8")[0]
                for v in range(20) for o in range(20)}
        assert len(hits) >= len(BUCKETS) // 2


class TestConsistentHashRing:
    def test_requires_buckets_and_virtual_nodes(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
        with pytest.raises(ValueError):
            ConsistentHashRing(BUCKETS, virtual_nodes=0)

    def test_deterministic(self):
        ring = ConsistentHashRing(BUCKETS)
        assert ring.buckets_for("key") == ring.buckets_for("key")

    def test_replicas_distinct(self):
        ring = ConsistentHashRing(BUCKETS)
        replicas = ring.buckets_for("some-key", replicas=4)
        assert len(set(replicas)) == 4

    def test_removing_a_bucket_only_moves_its_keys(self):
        ring = ConsistentHashRing(BUCKETS, virtual_nodes=64)
        keys = [f"key-{index}" for index in range(300)]
        before = {key: ring.buckets_for(key)[0] for key in keys}
        ring.remove_bucket(BUCKETS[3])
        after = {key: ring.buckets_for(key)[0] for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # Only keys previously owned by the removed bucket may move.
        assert all(before[key] == BUCKETS[3] for key in moved)
        assert all(after[key] != BUCKETS[3] for key in keys)

    def test_adding_a_bucket_is_idempotent(self):
        ring = ConsistentHashRing(BUCKETS)
        ring.add_bucket(BUCKETS[0])
        assert ring.all_buckets() == BUCKETS

    def test_reasonable_balance_with_virtual_nodes(self):
        ring = ConsistentHashRing(BUCKETS, virtual_nodes=128)
        counts = {bucket: 0 for bucket in BUCKETS}
        total = 4000
        for index in range(total):
            counts[ring.buckets_for(f"key-{index}")[0]] += 1
        expected = total / len(BUCKETS)
        assert max(counts.values()) < 3 * expected


class TestFactory:
    def test_static(self):
        assert isinstance(make_placement("static", BUCKETS), StaticPlacement)

    def test_consistent(self):
        assert isinstance(make_placement("consistent", BUCKETS), ConsistentHashRing)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_placement("magic", BUCKETS)
