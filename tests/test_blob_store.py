"""Integration tests of the public client API (BlobStore) against an
in-process cluster: the paper's primitives end to end."""

import pytest

from repro import BlobStore
from repro.errors import (
    InvalidRangeError,
    UnknownBlobError,
    VersionNotPublishedError,
)

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


class TestCreate:
    def test_create_returns_unique_ids(self, store):
        assert store.create() != store.create()

    def test_new_blob_is_empty_at_version_zero(self, store, blob_id):
        assert store.get_recent(blob_id) == 0
        assert store.get_size(blob_id, 0) == 0
        assert store.read(blob_id, 0, 0, 0) == b""

    def test_per_blob_page_size(self, store):
        blob_id = store.create(page_size=128)
        version = store.append(blob_id, b"x" * 300)
        store.sync(blob_id, version)
        assert store.get_size(blob_id, version) == 300


class TestAppend:
    def test_single_append_roundtrip(self, store, blob_id):
        payload = make_payload(5 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        assert version == 1
        assert store.get_size(blob_id, version) == len(payload)
        assert store.read(blob_id, version, 0, len(payload)) == payload

    def test_appends_accumulate(self, store, blob_id):
        first = make_payload(3 * PAGE, seed=1)
        second = make_payload(2 * PAGE, seed=2)
        store.append(blob_id, first)
        version = store.append(blob_id, second)
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, 5 * PAGE) == first + second

    def test_unaligned_appends_merge_the_tail_page(self, store, blob_id):
        store.append(blob_id, b"a" * 100)
        version = store.append(blob_id, b"b" * 100)
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, 200) == b"a" * 100 + b"b" * 100
        # The first snapshot still ends after 100 bytes.
        assert store.get_size(blob_id, 1) == 100

    def test_many_small_appends(self, store, blob_id):
        chunks = [make_payload(17, seed=index) for index in range(30)]
        version = 0
        for chunk in chunks:
            version = store.append(blob_id, chunk)
        store.sync(blob_id, version)
        total = sum(map(len, chunks))
        assert store.read(blob_id, version, 0, total) == b"".join(chunks)

    def test_empty_append_rejected(self, store, blob_id):
        with pytest.raises(InvalidRangeError):
            store.append(blob_id, b"")

    def test_append_ex_reports_details(self, store, blob_id):
        result = store.append_ex(blob_id, make_payload(4 * PAGE))
        assert result.version == 1
        assert result.pages_written == 4
        assert result.bytes_written == 4 * PAGE
        assert result.metadata_nodes_written == 7  # full tree over 4 pages


class TestWrite:
    def test_aligned_overwrite(self, store, blob_id):
        base = make_payload(8 * PAGE, seed=1)
        patch = make_payload(2 * PAGE, seed=9)
        store.append(blob_id, base)
        version = store.write(blob_id, patch, 2 * PAGE)
        store.sync(blob_id, version)
        expected = base[:2 * PAGE] + patch + base[4 * PAGE:]
        assert store.read(blob_id, version, 0, 8 * PAGE) == expected

    def test_old_version_untouched_by_overwrite(self, store, blob_id):
        base = make_payload(4 * PAGE, seed=1)
        store.append(blob_id, base)
        version = store.write(blob_id, make_payload(PAGE, seed=5), PAGE)
        store.sync(blob_id, version)
        assert store.read(blob_id, 1, 0, 4 * PAGE) == base

    def test_unaligned_overwrite_preserves_surrounding_bytes(self, store, blob_id):
        base = make_payload(3 * PAGE, seed=3)
        store.append(blob_id, base)
        version = store.write(blob_id, b"XYZ", 10)
        store.sync(blob_id, version)
        data = store.read(blob_id, version, 0, 3 * PAGE)
        assert data[:10] == base[:10]
        assert data[10:13] == b"XYZ"
        assert data[13:] == base[13:]

    def test_write_extending_the_blob(self, store, blob_id):
        store.append(blob_id, make_payload(2 * PAGE))
        version = store.write(blob_id, make_payload(3 * PAGE, seed=4), PAGE)
        store.sync(blob_id, version)
        assert store.get_size(blob_id, version) == 4 * PAGE

    def test_write_at_exact_end_behaves_like_append(self, store, blob_id):
        store.append(blob_id, b"a" * PAGE)
        version = store.write(blob_id, b"b" * PAGE, PAGE)
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, 2 * PAGE) == b"a" * PAGE + b"b" * PAGE

    def test_write_beyond_end_fails(self, store, blob_id):
        store.append(blob_id, b"a" * PAGE)
        with pytest.raises(InvalidRangeError):
            store.write(blob_id, b"x", 2 * PAGE)

    def test_write_to_empty_blob_at_offset_zero(self, store, blob_id):
        version = store.write(blob_id, b"hello", 0)
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, 5) == b"hello"

    def test_negative_offset_rejected(self, store, blob_id):
        with pytest.raises(InvalidRangeError):
            store.write(blob_id, b"x", -1)

    def test_empty_write_rejected(self, store, blob_id):
        with pytest.raises(InvalidRangeError):
            store.write(blob_id, b"", 0)

    def test_failed_write_does_not_leak_pages(self, store, cluster, blob_id):
        store.append(blob_id, b"a" * PAGE)
        pages_before = cluster.stored_page_count()
        with pytest.raises(InvalidRangeError):
            store.write(blob_id, b"x" * PAGE, 10 * PAGE)
        assert cluster.stored_page_count() == pages_before
        # The failed attempt must not block later publication either.
        version = store.append(blob_id, b"b" * PAGE)
        store.sync(blob_id, version)
        assert store.get_recent(blob_id) == version


class TestRead:
    def test_read_arbitrary_ranges(self, store, blob_id):
        payload = make_payload(10 * PAGE, seed=2)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        for offset, size in [(0, 1), (PAGE - 1, 2), (3 * PAGE + 7, 4 * PAGE),
                             (9 * PAGE, PAGE), (0, 10 * PAGE)]:
            assert store.read(blob_id, version, offset, size) == \
                payload[offset:offset + size]

    def test_read_zero_bytes(self, store, blob_id):
        version = store.append(blob_id, b"abc")
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 1, 0) == b""

    def test_read_unpublished_version_fails(self, store, blob_id):
        with pytest.raises(VersionNotPublishedError):
            store.read(blob_id, 3, 0, 1)

    def test_read_beyond_snapshot_size_fails(self, store, blob_id):
        version = store.append(blob_id, b"x" * 100)
        store.sync(blob_id, version)
        with pytest.raises(InvalidRangeError):
            store.read(blob_id, version, 50, 100)

    def test_read_negative_arguments_rejected(self, store, blob_id):
        version = store.append(blob_id, b"x" * 100)
        store.sync(blob_id, version)
        with pytest.raises(InvalidRangeError):
            store.read(blob_id, version, -1, 10)
        with pytest.raises(InvalidRangeError):
            store.read(blob_id, version, 0, -10)

    def test_read_unknown_blob(self, store):
        with pytest.raises(UnknownBlobError):
            store.read("missing", 0, 0, 0)

    def test_read_recent_returns_version_and_data(self, store, blob_id):
        payload = make_payload(2 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        got_version, data = store.read_recent(blob_id, 0, len(payload))
        assert got_version == version
        assert data == payload

    def test_read_ex_reports_metadata_traffic(self, store, blob_id):
        version = store.append(blob_id, make_payload(8 * PAGE))
        store.sync(blob_id, version)
        data, stats = store.read_ex(blob_id, version, 0, PAGE)
        assert len(data) == PAGE
        assert stats.pages_fetched == 1
        assert stats.metadata_nodes_fetched == 4  # root..leaf path in an 8-page tree


class TestVersionHistory:
    def test_every_version_remains_readable(self, store, blob_id):
        history = []
        content = bytearray()
        for index in range(12):
            chunk = make_payload(37 + index * 11, seed=index)
            store.append(blob_id, chunk)
            content.extend(chunk)
            history.append(bytes(content))
        store.sync(blob_id, len(history))
        for version, expected in enumerate(history, start=1):
            assert store.read(blob_id, version, 0, len(expected)) == expected

    def test_interleaved_writes_and_appends(self, store, blob_id):
        reference = bytearray()
        snapshots = {0: b""}
        operations = [
            ("append", make_payload(2 * PAGE, seed=1), None),
            ("write", make_payload(PAGE, seed=2), 0),
            ("append", make_payload(100, seed=3), None),
            ("write", make_payload(150, seed=4), 2 * PAGE - 30),
            ("append", make_payload(PAGE, seed=5), None),
            ("write", b"?" * 10, 5),
        ]
        version = 0
        for kind, payload, offset in operations:
            if kind == "append":
                offset = len(reference)
                version = store.append(blob_id, payload)
            else:
                version = store.write(blob_id, payload, offset)
            if offset + len(payload) > len(reference):
                reference.extend(bytes(offset + len(payload) - len(reference)))
            reference[offset:offset + len(payload)] = payload
            snapshots[version] = bytes(reference)
        store.sync(blob_id, version)
        for snapshot_version, expected in snapshots.items():
            size = store.get_size(blob_id, snapshot_version)
            assert size == len(expected)
            assert store.read(blob_id, snapshot_version, 0, size) == expected

    def test_get_recent_is_monotone(self, store, blob_id):
        seen = 0
        for index in range(5):
            store.append(blob_id, make_payload(20, seed=index))
            recent = store.get_recent(blob_id)
            assert recent >= seen
            seen = recent


class TestStorageAccounting:
    def test_only_new_pages_consume_space(self, store, cluster, blob_id):
        base = make_payload(8 * PAGE)
        store.append(blob_id, base)
        bytes_after_base = cluster.storage_bytes_used()
        version = store.write(blob_id, make_payload(PAGE, seed=7), 3 * PAGE)
        store.sync(blob_id, version)
        assert cluster.storage_bytes_used() == bytes_after_base + PAGE

    def test_pages_spread_over_providers(self, store, cluster, blob_id):
        version = store.append(blob_id, make_payload(32 * PAGE))
        store.sync(blob_id, version)
        distribution = cluster.page_load_distribution()
        assert sum(distribution.values()) == 32 * PAGE
        assert all(load > 0 for load in distribution.values())
        assert cluster.provider_manager.imbalance() == pytest.approx(1.0)

    def test_metadata_nodes_spread_over_buckets(self, store, cluster, blob_id):
        version = store.append(blob_id, make_payload(64 * PAGE))
        store.sync(blob_id, version)
        distribution = cluster.metadata_load_distribution()
        assert sum(distribution.values()) == 127  # 64 leaves + 63 inner nodes
        assert sum(1 for count in distribution.values() if count > 0) >= 6


class TestParallelIOAndStrictModes:
    def test_parallel_io_client_gives_identical_results(self, cluster, blob_id):
        parallel_store = BlobStore(cluster, parallel_io=4)
        payload = make_payload(16 * PAGE, seed=3)
        version = parallel_store.append(blob_id, payload)
        parallel_store.sync(blob_id, version)
        assert parallel_store.read(blob_id, version, 0, len(payload)) == payload

    def test_strict_unaligned_mode(self, cluster):
        store = BlobStore(cluster, strict_unaligned=True)
        blob_id = store.create()
        store.append(blob_id, b"a" * 100)
        version = store.write(blob_id, b"B" * 50, 25)
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, 100) == b"a" * 25 + b"B" * 50 + b"a" * 25

    def test_checksum_verifying_cluster_roundtrip(self, replicated_cluster):
        store = BlobStore(replicated_cluster)
        blob_id = store.create()
        payload = make_payload(6 * PAGE, seed=11)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        assert store.read(blob_id, version, 0, len(payload)) == payload
