"""Thread-safety stress tests for the version manager itself.

The version manager is the only serialization point of the design
(Section 4.3); these tests hammer it directly from many threads — without
the rest of the stack — to check that version assignment stays gap-free,
offsets never overlap for appends, and publication reaches exactly the last
completed version.
"""

import random
import threading

from repro.config import BlobSeerConfig
from repro.version.version_manager import VersionManager

PAGE = 64


def run_threads(count, target):
    threads = [threading.Thread(target=target, args=(index,)) for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestVersionAssignmentUnderContention:
    def test_versions_are_gap_free_and_unique(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob = vm.create_blob().blob_id
        per_thread = 25
        threads = 8
        assigned: list[int] = []
        lock = threading.Lock()

        def worker(_index):
            local = []
            for _ in range(per_thread):
                ticket = vm.register_update(blob, PAGE, is_append=True)
                local.append(ticket.version)
                vm.complete_update(blob, ticket.version)
            with lock:
                assigned.extend(local)

        run_threads(threads, worker)
        assert sorted(assigned) == list(range(1, threads * per_thread + 1))
        assert vm.get_recent(blob) == threads * per_thread

    def test_append_offsets_partition_the_blob(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob = vm.create_blob().blob_id
        sizes = [PAGE, 2 * PAGE, 3 * PAGE, 4 * PAGE]
        offsets: list[tuple[int, int]] = []
        lock = threading.Lock()

        def worker(index):
            rng = random.Random(index)
            for _ in range(20):
                size = rng.choice(sizes)
                ticket = vm.register_update(blob, size, is_append=True)
                with lock:
                    offsets.append((ticket.byte_offset, size))
                vm.complete_update(blob, ticket.version)

        run_threads(6, worker)
        # Append ranges must tile the blob exactly: sorted by offset, each
        # range starts where the previous one ended.
        offsets.sort()
        position = 0
        for offset, size in offsets:
            assert offset == position
            position += size
        assert vm.get_size(blob, vm.get_recent(blob)) == position

    def test_out_of_order_completion_publishes_in_order(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob = vm.create_blob().blob_id
        tickets = [vm.register_update(blob, PAGE, is_append=True) for _ in range(40)]
        observed: list[int] = []
        lock = threading.Lock()

        def completer(index):
            # Complete in a scrambled order.
            ticket = tickets[(index * 7 + 3) % len(tickets)]
            vm.complete_update(blob, ticket.version)
            with lock:
                observed.append(vm.get_recent(blob))

        run_threads(len(tickets), completer)
        assert vm.get_recent(blob) == len(tickets)
        # GET_RECENT snapshots taken along the way never exceed what was
        # actually contiguous-completed, and are monotone per construction.
        assert all(0 <= version <= len(tickets) for version in observed)

    def test_concurrent_sync_wakeups(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob = vm.create_blob().blob_id
        tickets = [vm.register_update(blob, PAGE, is_append=True) for _ in range(10)]
        results: list[bool] = []
        lock = threading.Lock()

        def waiter(index):
            vm.sync(blob, tickets[index].version, timeout=5)
            with lock:
                results.append(True)

        waiters = [
            threading.Thread(target=waiter, args=(index,)) for index in range(10)
        ]
        for thread in waiters:
            thread.start()
        for ticket in reversed(tickets):
            vm.complete_update(blob, ticket.version)
        for thread in waiters:
            thread.join()
        assert len(results) == 10

    def test_concurrent_branching_from_published_snapshots(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob = vm.create_blob().blob_id
        for _ in range(5):
            ticket = vm.register_update(blob, PAGE, is_append=True)
            vm.complete_update(blob, ticket.version)
        branches: list[str] = []
        lock = threading.Lock()

        def brancher(index):
            record = vm.branch(blob, 1 + index % 5)
            ticket = vm.register_update(record.blob_id, PAGE, is_append=True)
            vm.complete_update(record.blob_id, ticket.version)
            with lock:
                branches.append(record.blob_id)

        run_threads(10, brancher)
        assert len(set(branches)) == 10
        for index, branch in enumerate(branches):
            assert vm.get_recent(branch) >= 2  # branch point + its own update
        # The original blob is untouched by branch updates.
        assert vm.get_recent(blob) == 5
