"""Tests for the simulated experiments behind Figures 2(a) and 2(b)."""

import pytest

from repro.config import KiB, MiB
from repro.sim.experiments import (
    run_append_growth_experiment,
    run_mixed_workload_experiment,
    run_read_concurrency_experiment,
)


class TestAppendGrowthExperiment:
    def test_samples_track_blob_growth(self):
        samples = run_append_growth_experiment(
            num_provider_nodes=10, page_size=64 * KiB, append_bytes=1 * MiB,
            num_appends=5,
        )
        assert len(samples) == 5
        assert [s.pages_total for s in samples] == [16, 32, 48, 64, 80]
        assert all(s.bandwidth_mbps > 0 for s in samples)

    def test_bandwidth_does_not_degrade_with_blob_size(self):
        samples = run_append_growth_experiment(
            num_provider_nodes=10, page_size=64 * KiB, append_bytes=1 * MiB,
            num_appends=12,
        )
        assert samples[-1].bandwidth_mbps >= 0.9 * samples[0].bandwidth_mbps

    def test_larger_pages_yield_higher_bandwidth(self):
        small = run_append_growth_experiment(
            num_provider_nodes=10, page_size=64 * KiB, append_bytes=2 * MiB,
            num_appends=3,
        )
        large = run_append_growth_experiment(
            num_provider_nodes=10, page_size=256 * KiB, append_bytes=2 * MiB,
            num_appends=3,
        )
        assert large[-1].bandwidth_mbps > small[-1].bandwidth_mbps

    def test_border_fetches_grow_with_tree_depth(self):
        samples = run_append_growth_experiment(
            num_provider_nodes=6, page_size=64 * KiB, append_bytes=256 * KiB,
            num_appends=40,
        )
        assert samples[0].border_nodes_fetched <= samples[-1].border_nodes_fetched
        assert samples[-1].border_nodes_fetched <= 12  # logarithmic, not linear


class TestReadConcurrencyExperiment:
    def test_per_reader_bandwidth_degrades_gently(self):
        samples = run_read_concurrency_experiment(
            num_provider_nodes=16, page_size=64 * KiB, blob_bytes=128 * MiB,
            chunk_bytes=4 * MiB, reader_counts=[1, 8, 16],
        )
        assert [s.readers for s in samples] == [1, 8, 16]
        single, most = samples[0], samples[-1]
        assert most.avg_bandwidth_mbps <= single.avg_bandwidth_mbps
        assert most.avg_bandwidth_mbps >= 0.5 * single.avg_bandwidth_mbps
        assert most.aggregate_bandwidth_mbps > 5 * single.aggregate_bandwidth_mbps

    def test_metadata_fetches_per_read_are_logarithmic_in_blob_size(self):
        samples = run_read_concurrency_experiment(
            num_provider_nodes=8, page_size=64 * KiB, blob_bytes=64 * MiB,
            chunk_bytes=2 * MiB, reader_counts=[1],
        )
        pages_per_chunk = 2 * MiB // (64 * KiB)
        nodes = samples[0].avg_metadata_nodes_fetched
        # Tree traversal: ~2 * pages + path to the root, far below pages^2.
        assert nodes >= pages_per_chunk
        assert nodes <= 3 * pages_per_chunk + 20

    def test_blob_must_accommodate_all_readers(self):
        with pytest.raises(ValueError):
            run_read_concurrency_experiment(
                num_provider_nodes=4, page_size=64 * KiB, blob_bytes=8 * MiB,
                chunk_bytes=4 * MiB, reader_counts=[1, 4],
            )

    def test_results_are_deterministic(self):
        kwargs = dict(
            num_provider_nodes=8, page_size=64 * KiB, blob_bytes=32 * MiB,
            chunk_bytes=2 * MiB, reader_counts=[1, 8],
        )
        first = run_read_concurrency_experiment(**kwargs)
        second = run_read_concurrency_experiment(**kwargs)
        assert [s.avg_bandwidth_mbps for s in first] == [
            s.avg_bandwidth_mbps for s in second
        ]


class TestMixedWorkloadExperiment:
    def test_readers_and_writers_both_progress(self):
        samples = run_mixed_workload_experiment(
            num_provider_nodes=12, page_size=64 * KiB, blob_bytes=64 * MiB,
            chunk_bytes=4 * MiB, readers=6, writer_counts=[0, 3, 6],
            append_bytes=2 * MiB,
        )
        assert [s.writers for s in samples] == [0, 3, 6]
        baseline = samples[0]
        assert baseline.avg_append_bandwidth_mbps == 0.0
        assert baseline.versions_published == 0
        for sample in samples[1:]:
            assert sample.avg_read_bandwidth_mbps > 0
            assert sample.avg_append_bandwidth_mbps > 0
            assert sample.versions_published == 2 * sample.writers
            # Readers never collapse because of concurrent appends.
            assert sample.avg_read_bandwidth_mbps >= (
                0.4 * baseline.avg_read_bandwidth_mbps
            )

    def test_every_concurrent_append_exercises_inflight_borders(self):
        """With several concurrent appenders, later writers must resolve
        border versions against in-flight updates; the run completing at all
        (and publishing every version) exercises that code path end to end."""
        samples = run_mixed_workload_experiment(
            num_provider_nodes=8, page_size=64 * KiB, blob_bytes=16 * MiB,
            chunk_bytes=2 * MiB, readers=2, writer_counts=[6],
            append_bytes=1 * MiB, appends_per_writer=3,
        )
        assert samples[0].versions_published == 18
