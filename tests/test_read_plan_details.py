"""Focused unit tests for the sans-IO read plan and its generic driver."""

import pytest

from repro.errors import InvalidRangeError, MetadataNotFoundError
from repro.metadata.node import InnerNode, LeafNode, NodeRef
from repro.metadata.read_plan import drive_plan, read_plan


def full_tree(version: int, span: int, page_size: int = 64):
    """Build a complete in-memory tree of ``span`` leaves for one version."""
    nodes = {}
    for page in range(span):
        nodes[(page, 1)] = LeafNode(
            f"v{version}-p{page}", f"data-{page % 3}", page_size
        )
    size = 2
    while size <= span:
        for offset in range(0, span, size):
            nodes[(offset, size)] = InnerNode(version, version)
        size *= 2
    return nodes


class TestReadPlanTraversal:
    def test_single_leaf_tree(self):
        nodes = full_tree(1, 1)
        result = drive_plan(
            read_plan(1, 1, 0, 1), lambda ref: nodes[(ref.offset, ref.size)]
        )
        assert [d.page_id for d in result.descriptors] == ["v1-p0"]
        assert result.nodes_fetched == 1

    def test_full_range_visits_every_leaf_once(self):
        span = 16
        nodes = full_tree(1, span)
        result = drive_plan(read_plan(1, span, 0, span),
                            lambda ref: nodes[(ref.offset, ref.size)])
        assert result.leaves_visited == span
        assert result.inner_visited == span - 1
        assert sorted(d.page_index for d in result.descriptors) == list(range(span))

    def test_wrong_node_type_at_leaf_position_is_detected(self):
        nodes = full_tree(1, 2)
        nodes[(0, 1)] = InnerNode(1, 1)  # corrupt: inner node where a leaf belongs
        with pytest.raises(MetadataNotFoundError):
            drive_plan(read_plan(1, 2, 0, 2), lambda ref: nodes[(ref.offset, ref.size)])

    def test_wrong_node_type_at_inner_position_is_detected(self):
        nodes = full_tree(1, 4)
        nodes[(0, 2)] = LeafNode("bogus", "data-0", 64)
        with pytest.raises(MetadataNotFoundError):
            drive_plan(read_plan(1, 4, 0, 4), lambda ref: nodes[(ref.offset, ref.size)])

    def test_negative_or_overflowing_ranges_rejected(self):
        with pytest.raises(InvalidRangeError):
            drive_plan(read_plan(1, 4, -1, 2), lambda ref: None)
        with pytest.raises(InvalidRangeError):
            drive_plan(read_plan(1, 4, 3, 2), lambda ref: None)

    def test_descriptor_order_is_sorted_by_page(self):
        span = 8
        nodes = full_tree(3, span)
        result = drive_plan(read_plan(3, span, 1, 6),
                            lambda ref: nodes[(ref.offset, ref.size)])
        pages = [d.page_index for d in result.sorted_descriptors()]
        assert pages == sorted(pages) == list(range(1, 7))


class TestDrivePlan:
    def test_returns_generator_return_value(self):
        def plan():
            first = yield NodeRef(1, 0, 1)
            second = yield NodeRef(1, 1, 1)
            return (first, second)

        outcome = drive_plan(plan(), lambda ref: ref.offset * 10)
        assert outcome == (0, 10)

    def test_fetch_exceptions_propagate(self):
        def plan():
            yield NodeRef(1, 0, 1)
            return "unreachable"

        def failing_fetch(_ref):
            raise MetadataNotFoundError("boom")

        with pytest.raises(MetadataNotFoundError):
            drive_plan(plan(), failing_fetch)

    def test_plan_without_requests(self):
        def plan():
            return 42
            yield  # pragma: no cover - makes this a generator function

        assert drive_plan(plan(), lambda ref: ref) == 42
