"""Unit tests for the bucket store and the replicated DHT."""

import pytest

from repro.dht.dht import DHT
from repro.dht.storage import BucketStore
from repro.errors import MetadataNotFoundError, ProviderUnavailableError


class TestBucketStore:
    def test_put_get_roundtrip(self):
        store = BucketStore("meta-0000")
        store.put("key", {"value": 1})
        assert store.get("key") == {"value": 1}

    def test_missing_key_raises(self):
        store = BucketStore("meta-0000")
        with pytest.raises(MetadataNotFoundError):
            store.get("absent")

    def test_no_overwrite_mode_keeps_first_value(self):
        store = BucketStore("meta-0000")
        store.put("key", "first")
        store.put("key", "second", overwrite=False)
        assert store.get("key") == "first"

    def test_delete(self):
        store = BucketStore("meta-0000")
        store.put("key", 1)
        assert store.delete("key") is True
        assert store.delete("key") is False
        assert len(store) == 0

    def test_contains_and_keys(self):
        store = BucketStore("meta-0000")
        store.put("a", 1)
        store.put("b", 2)
        assert store.contains("a")
        assert not store.contains("c")
        assert sorted(store.keys()) == ["a", "b"]

    def test_kill_blocks_access_and_revive_restores(self):
        store = BucketStore("meta-0000")
        store.put("key", 1)
        store.kill()
        assert not store.alive
        with pytest.raises(ProviderUnavailableError):
            store.get("key")
        with pytest.raises(ProviderUnavailableError):
            store.put("other", 2)
        store.revive()
        assert store.get("key") == 1  # contents survive a restart

    def test_stats_track_hits_and_misses(self):
        store = BucketStore("meta-0000")
        store.put("key", 1)
        store.get("key")
        with pytest.raises(MetadataNotFoundError):
            store.get("nope")
        stats = store.stats
        assert stats.puts == 1
        assert stats.gets == 2
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.keys == 1


class TestDHT:
    def test_roundtrip_and_missing(self):
        dht = DHT(num_buckets=8)
        dht.put("k1", "v1")
        assert dht.get("k1") == "v1"
        assert dht.contains("k1")
        with pytest.raises(MetadataNotFoundError):
            dht.get("missing")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DHT(num_buckets=0)
        with pytest.raises(ValueError):
            DHT(num_buckets=4, replication=0)

    def test_replication_capped_at_bucket_count(self):
        dht = DHT(num_buckets=2, replication=5)
        assert dht.replication == 2

    def test_keys_distribute_over_buckets(self):
        dht = DHT(num_buckets=8)
        for index in range(400):
            dht.put(f"blob/{index // 20}/{index % 20}/1", index)
        distribution = dht.load_distribution()
        assert sum(distribution.values()) == 400
        assert sum(1 for count in distribution.values() if count > 0) >= 6

    def test_replicated_value_survives_primary_failure(self):
        dht = DHT(num_buckets=6, replication=3)
        dht.put("important", 42)
        primary = dht.buckets_for("important")[0]
        dht.kill_bucket(primary)
        assert dht.get("important") == 42

    def test_unreplicated_value_unavailable_after_failure(self):
        dht = DHT(num_buckets=6, replication=1)
        dht.put("fragile", 42)
        primary = dht.buckets_for("fragile")[0]
        dht.kill_bucket(primary)
        with pytest.raises(ProviderUnavailableError):
            dht.get("fragile")
        dht.revive_bucket(primary)
        assert dht.get("fragile") == 42

    def test_put_fails_only_when_all_replicas_down(self):
        dht = DHT(num_buckets=3, replication=3)
        for bucket_id in dht.bucket_ids():
            dht.kill_bucket(bucket_id)
        with pytest.raises(ProviderUnavailableError):
            dht.put("key", 1)
        dht.revive_bucket(dht.bucket_ids()[0])
        dht.put("key", 1)  # one live replica is enough
        assert dht.get("key") == 1

    def test_rejoined_replica_miss_falls_through_to_live_holder(self):
        # Kill the primary during the put (the write lands on the second
        # replica only), then let it rejoin: a GET must fall through the
        # rejoined-but-empty primary and serve the key from the replica
        # that holds it — a live replica's miss is not authoritative.
        dht = DHT(num_buckets=4, replication=2)
        primary, secondary = dht.buckets_for("key")[:2]
        dht.kill_bucket(primary)
        dht.put("key", "survivor")
        dht.revive_bucket(primary)
        assert dht.get("key") == "survivor"
        assert dht.multi_get(["key"]) == ["survivor"]
        # And the key is still reachable if the holder's PEER dies.
        dht.kill_bucket(secondary)
        with pytest.raises(ProviderUnavailableError):
            dht.get("key")

    def test_miss_after_dead_replica_reports_unavailable_not_missing(self):
        # Regression (PR 5): the key lives ONLY on the primary (the second
        # replica was down during the put).  With the primary now dead and
        # the empty second replica rejoined, the old code let the live
        # replica's miss overwrite the recorded unavailability and raised
        # MetadataNotFoundError — wrongly reporting durable loss for data
        # that is merely behind a dead node.
        dht = DHT(num_buckets=4, replication=2)
        primary, secondary = dht.buckets_for("key")[:2]
        dht.kill_bucket(secondary)
        dht.put("key", "on-primary-only")
        dht.revive_bucket(secondary)
        dht.kill_bucket(primary)
        with pytest.raises(ProviderUnavailableError):
            dht.get("key")
        with pytest.raises(ProviderUnavailableError):
            dht.multi_get(["key"])
        # Once the holder rejoins, the value is served again.
        dht.revive_bucket(primary)
        assert dht.get("key") == "on-primary-only"

    def test_missing_key_with_all_replicas_live_is_not_found(self):
        dht = DHT(num_buckets=4, replication=2)
        with pytest.raises(MetadataNotFoundError):
            dht.get("never-written")
        with pytest.raises(MetadataNotFoundError):
            dht.multi_get(["never-written"])

    def test_delete_removes_from_all_replicas(self):
        dht = DHT(num_buckets=4, replication=2)
        dht.put("key", "value")
        assert dht.delete("key") is True
        assert not dht.contains("key")

    def test_stats_aggregate(self):
        dht = DHT(num_buckets=4, replication=2)
        dht.put("a", 1)
        dht.get("a")
        stats = dht.stats()
        assert stats.buckets == 4
        assert stats.puts == 2  # one per replica
        assert stats.keys == 2
        assert stats.hits == 1

    def test_consistent_strategy_works(self):
        dht = DHT(num_buckets=8, strategy="consistent", replication=2)
        dht.put("k", "v")
        assert dht.get("k") == "v"
        assert len(set(dht.buckets_for("k"))) == 2
