"""Unit tests for the discrete-event engine (events, processes, pipes)."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, Pipe, Simulator


class TestEvents:
    def test_succeed_delivers_value_to_callbacks(self):
        sim = Simulator()
        event = sim.event()
        seen = []
        event.add_callback(seen.append)
        event.succeed(42)
        sim.run()
        assert seen == [42]

    def test_callback_added_after_trigger_still_fires(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("late")
        seen = []
        event.add_callback(seen.append)
        sim.run()
        assert seen == ["late"]

    def test_double_succeed_is_an_error(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_timeout_advances_virtual_time(self):
        sim = Simulator()
        sim.timeout(5.0)
        assert sim.run() == pytest.approx(5.0)

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().timeout(-1)


class TestAllOf:
    def test_fires_after_all_events(self):
        sim = Simulator()
        events = [sim.timeout(1.0), sim.timeout(3.0), sim.timeout(2.0)]
        joined = sim.all_of(events)
        done_at = []
        joined.add_callback(lambda _v: done_at.append(sim.now))
        sim.run()
        assert done_at == [pytest.approx(3.0)]

    def test_empty_join_fires_immediately(self):
        sim = Simulator()
        joined = AllOf(sim, [])
        assert joined.triggered
        assert joined.value == []


class TestProcesses:
    def test_process_returns_value_through_its_event(self):
        sim = Simulator()

        def activity():
            yield sim.timeout(2.0)
            yield sim.timeout(3.0)
            return "done"

        assert sim.run_process(activity()) == "done"
        assert sim.now == pytest.approx(5.0)

    def test_yield_from_composes_sub_activities(self):
        sim = Simulator()

        def step(duration):
            yield sim.timeout(duration)
            return duration

        def activity():
            first = yield from step(1.0)
            second = yield from step(2.0)
            return first + second

        assert sim.run_process(activity()) == pytest.approx(3.0)

    def test_parallel_processes_overlap_in_time(self):
        sim = Simulator()

        def activity(duration):
            yield sim.timeout(duration)
            return sim.now

        processes = [sim.process(activity(d)) for d in (4.0, 1.0, 2.0)]
        sim.run()
        assert sim.now == pytest.approx(4.0)
        assert [p.event.value for p in processes] == [
            pytest.approx(4.0), pytest.approx(1.0), pytest.approx(2.0)]

    def test_yielding_a_non_event_is_an_error(self):
        sim = Simulator()

        def bad():
            yield "not an event"

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_process_detects_deadlock(self):
        sim = Simulator()

        def stuck():
            yield sim.event()  # never succeeded

        with pytest.raises(SimulationError):
            sim.run_process(stuck())

    def test_run_until_bounds_time(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == pytest.approx(4.0)


class TestPipe:
    def test_fifo_serialization(self):
        sim = Simulator()
        pipe = Pipe(sim, "nic")
        completions = []

        def user(duration):
            yield pipe.use(duration)
            completions.append(sim.now)

        for duration in (2.0, 3.0, 1.0):
            sim.process(user(duration))
        sim.run()
        assert completions == [
            pytest.approx(2.0), pytest.approx(5.0), pytest.approx(6.0),
        ]

    def test_busy_time_and_utilization(self):
        sim = Simulator()
        pipe = Pipe(sim, "nic")
        pipe.use(2.0)
        pipe.use(3.0)
        sim.run()
        assert pipe.busy_time == pytest.approx(5.0)
        assert pipe.requests == 2
        assert pipe.utilization(10.0) == pytest.approx(0.5)
        assert pipe.utilization(0.0) == 0.0

    def test_negative_occupancy_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Pipe(sim, "nic").use(-1.0)

    def test_pipe_idles_between_bursts(self):
        sim = Simulator()
        pipe = Pipe(sim, "nic")

        def late_user():
            yield sim.timeout(10.0)
            yield pipe.use(1.0)
            return sim.now

        assert sim.run_process(late_user()) == pytest.approx(11.0)
