"""Tests of the asyncio-native client core (:mod:`repro.core.async_store`)
and the sync bridge over it.

No pytest-asyncio in the toolchain: every async scenario runs through
``asyncio.run`` inside an ordinary sync test function, which also proves the
library never requires a particular test harness.

The headline property: :class:`AsyncBlobStore` (event-loop runtime,
pipelined reads, overlapped writes) and :class:`BlobStore` (loop-free sync
bridge) produce byte-for-byte identical data AND field-for-field identical
``ReadStats`` / ``WriteResult`` trip counters across random operation
histories — one code path, two execution modes, same observable behaviour.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    AsyncBlobStore,
    BlobStore,
    Cluster,
    InvalidRangeError,
    StoreClosedError,
    VersionNotPublishedError,
)
from repro.aio import AsyncRuntime, SyncRuntime, run_sync
from repro.cache import NodeCache, PageCache

from .conftest import TEST_PAGE_SIZE, make_payload


def small_cluster() -> Cluster:
    return Cluster.in_memory(
        num_data_providers=4,
        num_metadata_providers=4,
        page_size=TEST_PAGE_SIZE,
    )


class TestAsyncSurface:
    """Every paper primitive, awaited."""

    def test_create_write_sync_read_roundtrip(self):
        async def scenario():
            cluster = small_cluster()
            async with AsyncBlobStore(cluster) as store:
                blob_id = await store.create()
                payload = make_payload(5 * TEST_PAGE_SIZE + 17)
                result = await store.write_ex(blob_id, payload, 0)
                await store.sync(blob_id, result.version)
                assert await store.get_size(blob_id, result.version) == len(payload)
                data, stats = await store.read_ex(
                    blob_id, result.version, 0, len(payload)
                )
                assert data == payload
                assert stats.pages_fetched == 6
                # The writer's publish write-through warmed the shared cache:
                # its own read-back walks the tree entirely from memory.
                assert stats.metadata_round_trips == 0
                assert stats.metadata_cache_hits > 0
                return result

        result = asyncio.run(scenario())
        assert result.version == 1
        assert result.pages_written == 6

    def test_append_read_recent_and_branch(self):
        async def scenario():
            cluster = small_cluster()
            async with AsyncBlobStore(cluster) as store:
                blob_id = await store.create()
                first = make_payload(TEST_PAGE_SIZE + 5, seed=1)
                second = make_payload(30, seed=2)
                v1 = await store.append(blob_id, first)
                await store.sync(blob_id, v1)
                v2 = await store.append(blob_id, second)
                await store.sync(blob_id, v2)
                assert await store.get_recent(blob_id) == v2
                version, tail = await store.read_recent(
                    blob_id, len(first), len(second)
                )
                assert (version, tail) == (v2, second)
                # BRANCH isolates the child from later parent writes.
                child = await store.branch(blob_id, v1)
                child_bytes = await store.read(child, v1, 0, len(first))
                assert child_bytes == first

        asyncio.run(scenario())

    def test_unaligned_write_preserves_boundaries(self):
        async def scenario():
            cluster = small_cluster()
            async with AsyncBlobStore(cluster) as store:
                blob_id = await store.create()
                base = make_payload(3 * TEST_PAGE_SIZE, seed=3)
                v1 = await store.write(blob_id, base, 0)
                await store.sync(blob_id, v1)
                patch = make_payload(40, seed=4)
                v2 = await store.write(blob_id, patch, 50)
                await store.sync(blob_id, v2)
                expected = base[:50] + patch + base[90:]
                assert await store.read(blob_id, v2, 0, len(base)) == expected

        asyncio.run(scenario())

    def test_invalid_ranges_raise(self):
        async def scenario():
            cluster = small_cluster()
            async with AsyncBlobStore(cluster) as store:
                blob_id = await store.create()
                with pytest.raises(InvalidRangeError):
                    await store.write_ex(blob_id, b"", 0)
                with pytest.raises(InvalidRangeError):
                    await store.read(blob_id, 0, 0, 10)

        asyncio.run(scenario())

    def test_sync_waits_for_late_publication_and_times_out(self):
        async def scenario():
            cluster = small_cluster()
            async with AsyncBlobStore(cluster) as store:
                blob_id = await store.create()
                vm = cluster.version_manager
                ticket = vm.register_update(blob_id, TEST_PAGE_SIZE, offset=0)

                async def publish_later():
                    await asyncio.sleep(0.05)
                    vm.complete_update(blob_id, ticket.version)

                # The version is only published mid-wait: sync() must park on
                # the loop until the publish notification arrives.
                task = asyncio.ensure_future(publish_later())
                await store.sync(blob_id, ticket.version, timeout=5.0)
                await task
                # And a version that never publishes trips the timeout.
                with pytest.raises(VersionNotPublishedError):
                    await store.sync(blob_id, ticket.version + 5, timeout=0.05)

        asyncio.run(scenario())


class TestLifecycle:
    """Context managers, idempotent close, use-after-close errors."""

    def test_sync_store_context_manager_and_double_close(self):
        cluster = small_cluster()
        with BlobStore(cluster) as store:
            blob_id = store.create()
            store.append(blob_id, b"x")
        store.close()  # second close (after __exit__): idempotent no-op
        with pytest.raises(StoreClosedError, match="BlobStore is closed"):
            store.create()
        with pytest.raises(StoreClosedError):
            store.read(blob_id, 1, 0, 1)
        with pytest.raises(StoreClosedError):
            with store:
                pass  # re-entering a closed store is refused

    def test_async_store_context_manager_and_double_close(self):
        async def scenario():
            cluster = small_cluster()
            async with AsyncBlobStore(cluster) as store:
                blob_id = await store.create()
                await store.append(blob_id, b"x")
            await store.aclose()  # idempotent after __aexit__
            store.close()  # and the sync spelling too
            with pytest.raises(StoreClosedError, match="AsyncBlobStore is closed"):
                await store.create()
            with pytest.raises(StoreClosedError):
                await store.read_ex(blob_id, 1, 0, 1)

        asyncio.run(scenario())

    def test_closing_one_store_leaves_cluster_usable(self):
        cluster = small_cluster()
        first = BlobStore(cluster)
        blob_id = first.create()
        first.append(blob_id, b"hello")
        first.close()
        second = BlobStore(cluster)
        assert second.read(blob_id, 1, 0, 5) == b"hello"


class _SyncAsAsync:
    """Adapter running the equivalence driver against the sync bridge, so
    one history executor covers both execution modes."""

    def __init__(self, store: BlobStore):
        self._store = store

    async def create(self):
        return self._store.create()

    async def write_ex(self, blob_id, data, offset):
        return self._store.write_ex(blob_id, data, offset)

    async def append_ex(self, blob_id, data):
        return self._store.append_ex(blob_id, data)

    async def read_ex(self, blob_id, version, offset, size):
        return self._store.read_ex(blob_id, version, offset, size)

    async def sync(self, blob_id, version):
        return self._store.sync(blob_id, version)

    async def branch(self, blob_id, version):
        return self._store.branch(blob_id, version)


async def _drive_history(store, operations):
    """Execute a random-but-deterministic history; return every observable
    outcome (result dataclasses and read bytes) for comparison.

    Op specs carry fractions rather than absolute values so the same spec
    stays valid against whatever sizes the history produced so far; the
    resolution is pure arithmetic, hence identical across stores.
    """
    outcomes = []
    blobs: list[str] = [await store.create()]
    # (blob_index, version, size) of every published snapshot
    published: list[tuple[int, int, int]] = []
    sizes: dict[int, int] = {0: 0}

    def pick(items, frac):
        return items[int(frac * (len(items) - 1))] if items else None

    for op in operations:
        kind = op[0]
        if kind == "append":
            _, blob_frac, length, seed = op
            blob_index = pick(range(len(blobs)), blob_frac)
            result = await store.append_ex(
                blobs[blob_index], make_payload(length, seed)
            )
            await store.sync(blobs[blob_index], result.version)
            sizes[blob_index] += length
            published.append((blob_index, result.version, sizes[blob_index]))
            outcomes.append(result)
        elif kind == "write":
            _, blob_frac, length, offset_frac, seed = op
            blob_index = pick(range(len(blobs)), blob_frac)
            offset = int(offset_frac * sizes[blob_index])
            result = await store.write_ex(
                blobs[blob_index], make_payload(length, seed), offset
            )
            await store.sync(blobs[blob_index], result.version)
            sizes[blob_index] = max(sizes[blob_index], offset + length)
            published.append((blob_index, result.version, sizes[blob_index]))
            outcomes.append(result)
        elif kind == "branch":
            _, snap_frac = op
            snap = pick(published, snap_frac)
            if snap is None:
                continue
            blob_index, version, size = snap
            child = await store.branch(blobs[blob_index], version)
            blobs.append(child)
            sizes[len(blobs) - 1] = size
            published.append((len(blobs) - 1, version, size))
        else:  # read
            _, snap_frac, offset_frac, size_frac = op
            snap = pick(published, snap_frac)
            if snap is None:
                continue
            blob_index, version, size = snap
            offset = int(offset_frac * size)
            count = int(size_frac * (size - offset))
            data, stats = await store.read_ex(
                blobs[blob_index], version, offset, count
            )
            outcomes.append((data, stats))
    return outcomes


history_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("append"),
            st.floats(0, 1),
            st.integers(1, 3 * TEST_PAGE_SIZE),
            st.integers(0, 255),
        ),
        st.tuples(
            st.just("write"),
            st.floats(0, 1),
            st.integers(1, 2 * TEST_PAGE_SIZE),
            st.floats(0, 1),
            st.integers(0, 255),
        ),
        st.tuples(st.just("branch"), st.floats(0, 1)),
        st.tuples(
            st.just("read"), st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)
        ),
    ),
    min_size=1,
    max_size=12,
)


class TestAsyncSyncEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(operations=history_strategy)
    def test_same_bytes_and_same_trip_counters(self, operations):
        """The tentpole property: one async code path, two execution modes,
        identical bytes AND identical ReadStats/WriteResult counters.

        Each store gets its own cluster and its own dedicated caches (the
        process-shared defaults would leak occupancy between the twins);
        in-cluster state is otherwise deterministic, so every counter —
        trips, cache hits, occupancy snapshots — must match field for field.
        """
        sync_cluster = small_cluster()
        sync_store = BlobStore(
            sync_cluster, node_cache=NodeCache(), page_cache=PageCache()
        )
        sync_outcomes = asyncio.run(
            _drive_history(_SyncAsAsync(sync_store), operations)
        )

        async_cluster = small_cluster()

        async def run_async():
            async with AsyncBlobStore(
                async_cluster, node_cache=NodeCache(), page_cache=PageCache()
            ) as store:
                return await _drive_history(store, operations)

        async_outcomes = asyncio.run(run_async())
        assert async_outcomes == sync_outcomes

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(operations=history_strategy)
    def test_equivalence_extends_to_cold_path_counters(self, operations):
        """The same property under the cold-path config (DESIGN.md §9):
        with ``speculative_prefetch`` on, the sync bridge cannot pipeline
        (its speculation gate stays closed) while the async store
        speculates — yet every outcome still matches field for field once
        the async side's ``speculative_*`` pair, its ONLY permitted
        divergence, is zeroed.  The other new counters (``failovers``,
        ``degraded``, ``peer_cache_hits``) must agree at exactly zero on a
        healthy, peer-less run."""

        def cold_cluster():
            return Cluster.in_memory(
                num_data_providers=4,
                num_metadata_providers=4,
                page_size=TEST_PAGE_SIZE,
                speculative_prefetch=True,
            )

        sync_store = BlobStore(
            cold_cluster(), node_cache=NodeCache(), page_cache=PageCache()
        )
        sync_outcomes = asyncio.run(
            _drive_history(_SyncAsAsync(sync_store), operations)
        )

        async def run_async():
            async with AsyncBlobStore(
                cold_cluster(), node_cache=NodeCache(), page_cache=PageCache()
            ) as store:
                return await _drive_history(store, operations)

        async_outcomes = asyncio.run(run_async())
        assert len(async_outcomes) == len(sync_outcomes)
        for async_outcome, sync_outcome in zip(async_outcomes, sync_outcomes):
            if not isinstance(async_outcome, tuple):  # WriteResult
                assert async_outcome == sync_outcome
                continue
            (async_data, async_stats) = async_outcome
            (sync_data, sync_stats) = sync_outcome
            assert async_data == sync_data
            assert sync_stats.speculative_hits == 0
            assert sync_stats.speculative_wasted == 0
            normalized = replace(
                async_stats, speculative_hits=0, speculative_wasted=0
            )
            assert normalized == sync_stats
            for stats in (async_stats, sync_stats):
                assert stats.failovers == 0
                assert stats.degraded == 0
                assert stats.peer_cache_hits == 0

    def test_cold_read_counters_match_exactly(self):
        """Deterministic spot check (no hypothesis): a cold multi-level read
        through the pipelined traversal reports the same nodes_fetched and
        round-trip counts as the strict level-by-level sync walk."""
        payload = make_payload(16 * TEST_PAGE_SIZE, seed=9)

        def sync_stats():
            store = BlobStore(
                small_cluster(), cache_metadata=False, cache_pages=False
            )
            blob_id = store.create()
            version = store.write(blob_id, payload, 0)
            store.sync(blob_id, version)
            return store.read_ex(blob_id, version, 0, len(payload))

        async def async_stats():
            store = AsyncBlobStore(
                small_cluster(), cache_metadata=False, cache_pages=False
            )
            blob_id = await store.create()
            version = await store.write(blob_id, payload, 0)
            await store.sync(blob_id, version)
            return await store.read_ex(blob_id, version, 0, len(payload))

        sync_data, sync_read = sync_stats()
        async_data, async_read = asyncio.run(async_stats())
        assert async_data == sync_data == payload
        assert async_read == sync_read
        assert sync_read.metadata_round_trips >= 3  # genuinely multi-level


class TestEventLoopConcurrency:
    def test_ten_thousand_gathered_reads_no_per_op_threads(self):
        """10k concurrent reads on ONE event loop: every operation goes
        through the store concurrently and not a single thread is spawned
        per operation (the old model needed a thread per blocked client)."""
        cluster = small_cluster()
        payload = make_payload(2 * TEST_PAGE_SIZE, seed=7)

        async def scenario():
            async with AsyncBlobStore(cluster) as store:
                blob_id = await store.create()
                version = await store.write(blob_id, payload, 0)
                await store.sync(blob_id, version)

                before = threading.active_count()
                reads = [
                    store.read_ex(
                        blob_id, version, index % TEST_PAGE_SIZE, TEST_PAGE_SIZE
                    )
                    for index in range(10_000)
                ]
                results = await asyncio.gather(*reads)
                after = threading.active_count()
                return before, after, results

        before, after, results = asyncio.run(scenario())
        assert after == before  # zero threads per operation
        assert len(results) == 10_000
        for index, (data, stats) in enumerate(results):
            offset = index % TEST_PAGE_SIZE
            assert data == payload[offset:offset + TEST_PAGE_SIZE]
            assert stats.bytes_read == TEST_PAGE_SIZE

    def test_gathered_cold_reads_interleave_on_the_loop(self):
        """Cold concurrent reads genuinely interleave: the runtime parks
        every gathered read on the loop before the first backend batch runs
        (AsyncRuntime.run_batches yields first), so peak in-flight equals
        the gather width."""
        cluster = small_cluster()
        payload = make_payload(4 * TEST_PAGE_SIZE, seed=8)
        in_flight = 0
        peak = 0

        async def tracked_read(store, blob_id, version):
            nonlocal in_flight, peak
            in_flight += 1
            peak = max(peak, in_flight)
            # Parking here lets every sibling read start before any backend
            # work happens; without the loop this would serialize.
            await asyncio.sleep(0)
            data = await store.read(blob_id, version, 0, len(payload))
            in_flight -= 1
            return data

        async def scenario():
            async with AsyncBlobStore(
                cluster, cache_metadata=False, cache_pages=False
            ) as store:
                blob_id = await store.create()
                version = await store.write(blob_id, payload, 0)
                await store.sync(blob_id, version)
                return await asyncio.gather(
                    *(tracked_read(store, blob_id, version) for _ in range(64))
                )

        results = asyncio.run(scenario())
        assert all(data == payload for data in results)
        assert peak == 64


class TestRuntimeSeam:
    def test_run_sync_rejects_suspending_coroutines(self):
        class Suspends:
            def __await__(self):
                yield  # a genuine suspension point, no loop required

        async def suspends():
            await Suspends()

        with pytest.raises(RuntimeError, match="suspended"):
            run_sync(suspends())

    def test_sync_bridge_uses_sync_runtime(self):
        store = BlobStore(small_cluster())
        assert isinstance(store._runtime, SyncRuntime)
        assert not store._runtime.pipelined
        assert isinstance(store._engine, AsyncBlobStore)

    def test_async_store_defaults_to_event_loop_runtime(self):
        store = AsyncBlobStore(small_cluster())
        assert isinstance(store._runtime, AsyncRuntime)
        assert store._runtime.pipelined
