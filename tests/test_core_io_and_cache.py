"""Tests for the file-like adapters and the client-side metadata cache."""

import io

import pytest

from repro import Blob, BlobStore, CacheStats, NodeCache
from repro.core.io import AppendWriter
from repro.errors import InvalidRangeError

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


class TestSnapshotReader:
    def _blob(self, store, size=10 * PAGE, seed=1):
        blob = Blob.create(store)
        payload = make_payload(size, seed=seed)
        blob.sync(blob.append(payload))
        return blob, payload

    def test_sequential_reads(self, store):
        blob, payload = self._blob(store)
        reader = blob.open_reader()
        assert reader.read(100) == payload[:100]
        assert reader.read(PAGE) == payload[100:100 + PAGE]
        assert reader.tell() == 100 + PAGE

    def test_read_all_and_eof(self, store):
        blob, payload = self._blob(store)
        reader = blob.open_reader()
        assert reader.read() == payload
        assert reader.read(10) == b""
        assert reader.tell() == len(payload)

    def test_seek_whence_variants(self, store):
        blob, payload = self._blob(store)
        reader = blob.open_reader()
        reader.seek(5 * PAGE)
        assert reader.read(10) == payload[5 * PAGE:5 * PAGE + 10]
        reader.seek(-20, io.SEEK_END)
        assert reader.read() == payload[-20:]
        reader.seek(0)
        reader.read(7)
        reader.seek(3, io.SEEK_CUR)
        assert reader.tell() == 10
        with pytest.raises(InvalidRangeError):
            reader.seek(-1)
        with pytest.raises(ValueError):
            reader.seek(0, 9)

    def test_reader_is_pinned_to_its_version(self, store):
        blob, payload = self._blob(store)
        reader = blob.open_reader()
        blob.sync(blob.write(b"X" * PAGE, 0))
        assert reader.version == 1
        assert reader.read(PAGE) == payload[:PAGE]  # still the old bytes

    def test_reader_of_specific_old_version(self, store):
        blob, payload = self._blob(store)
        blob.sync(blob.append(make_payload(PAGE, seed=9)))
        reader = blob.open_reader(version=1)
        assert reader.size == len(payload)
        assert reader.read() == payload

    def test_readinto_and_interfaces(self, store):
        blob, payload = self._blob(store)
        reader = blob.open_reader()
        buffer = bytearray(64)
        assert reader.readinto(buffer) == 64
        assert bytes(buffer) == payload[:64]
        assert reader.readable() and reader.seekable() and not reader.writable()

    def test_buffered_wrapper_works(self, store):
        blob, payload = self._blob(store)
        buffered = io.BufferedReader(blob.open_reader(), buffer_size=128)
        assert buffered.read(300) == payload[:300]

    def test_closed_reader_rejects_reads(self, store):
        blob, _payload = self._blob(store)
        reader = blob.open_reader()
        reader.close()
        with pytest.raises(ValueError):
            reader.read(1)


class TestAppendWriter:
    def test_small_writes_are_buffered_until_threshold(self, store):
        blob = Blob.create(store)
        writer = blob.open_writer(flush_threshold=4 * PAGE)
        for _ in range(3):
            writer.write(b"a" * PAGE)
        assert writer.versions == []          # below the threshold: buffered
        writer.write(b"a" * PAGE)
        assert writer.versions == [1]         # threshold reached: one APPEND
        writer.write(b"b" * 10)
        last = writer.sync()
        assert last == 2
        assert blob.read_all() == b"a" * (4 * PAGE) + b"b" * 10

    def test_large_write_is_split_into_threshold_chunks(self, store):
        blob = Blob.create(store)
        writer = blob.open_writer(flush_threshold=2 * PAGE)
        payload = make_payload(7 * PAGE, seed=3)
        writer.write(payload)
        writer.close()
        assert len(writer.versions) == 4      # 3 full chunks + the tail
        assert writer.bytes_written == len(payload)
        blob.sync(writer.versions[-1])
        assert blob.read_all() == payload

    def test_close_flushes_and_further_writes_fail(self, store):
        blob = Blob.create(store)
        writer = blob.open_writer()
        writer.write(b"tail")
        writer.close()
        assert writer.versions == [1]
        with pytest.raises(ValueError):
            writer.write(b"more")
        blob.sync(1)
        assert blob.read_all() == b"tail"

    def test_sync_without_data(self, store):
        blob = Blob.create(store)
        writer = blob.open_writer()
        assert writer.sync() == 0

    def test_invalid_threshold(self, store):
        blob = Blob.create(store)
        with pytest.raises(InvalidRangeError):
            AppendWriter(store, blob.blob_id, flush_threshold=0)

    def test_writer_and_reader_round_trip(self, store):
        blob = Blob.create(store)
        chunks = [make_payload(3 * PAGE + 17, seed=index) for index in range(5)]
        with blob.open_writer(flush_threshold=2 * PAGE) as writer:
            for chunk in chunks:
                writer.write(chunk)
        blob.sync(writer.versions[-1])
        assert blob.open_reader().read() == b"".join(chunks)


class TestMetadataCache:
    def test_cache_reduces_dht_traffic_on_repeated_reads(self, cluster):
        # A cold writer populates the blob; the cached reader shows the
        # miss-then-hit pattern against its own private NodeCache.
        writer = BlobStore(cluster, cache_metadata=False)
        store = BlobStore(cluster, node_cache=NodeCache())
        blob_id = writer.create()
        payload = make_payload(32 * PAGE)
        version = writer.append(blob_id, payload)
        store.sync(blob_id, version)
        gets_before = cluster.dht.stats().gets
        assert store.read(blob_id, version, 0, len(payload)) == payload
        first_pass_gets = cluster.dht.stats().gets - gets_before
        assert store.read(blob_id, version, 0, len(payload)) == payload
        second_pass_gets = cluster.dht.stats().gets - gets_before - first_pass_gets
        assert first_pass_gets > 0
        assert second_pass_gets == 0           # served entirely from the cache
        stats = store.cache_stats()
        assert stats.hits >= stats.misses > 0
        assert stats.entries == first_pass_gets
        assert 0.0 < stats.hit_rate < 1.0
        assert stats.bytes > 0

    def test_cache_is_correct_across_versions(self, cluster):
        store = BlobStore(cluster, node_cache=NodeCache())
        blob_id = store.create()
        base = make_payload(8 * PAGE, seed=1)
        store.append(blob_id, base)
        store.read(blob_id, 1, 0, len(base))    # warm the cache with v1 nodes
        version = store.write(blob_id, make_payload(PAGE, seed=2), 2 * PAGE)
        store.sync(blob_id, version)
        expected = base[:2 * PAGE] + make_payload(PAGE, seed=2) + base[3 * PAGE:]
        assert store.read(blob_id, version, 0, len(base)) == expected
        assert store.read(blob_id, 1, 0, len(base)) == base

    def test_uncached_store_reports_zero_cache(self, store, blob_id):
        version = store.append(blob_id, make_payload(PAGE))
        store.sync(blob_id, version)
        _, stats = store.read_ex(blob_id, version, 0, PAGE)
        assert stats.cache is None
        assert stats.metadata_cache_hits == 0
        assert store.cache_stats() == CacheStats()
        # The legacy metadata_cache_stats() positional shim was removed one
        # release after deprecation, as promised.
        assert not hasattr(store, "metadata_cache_stats")
        assert store.cache_stats().as_tuple() == (0, 0, 0)
