"""Tests for garbage collection and the cluster report."""

import pytest

from repro.errors import ConcurrencyError, UnknownBlobError
from repro.tools.gc import collect_garbage
from repro.tools.report import cluster_report

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


def build_history(store, blob_id, versions=4, pages_per_version=4):
    payloads = {}
    for index in range(versions):
        payload = make_payload(pages_per_version * PAGE, seed=index)
        if index == 0:
            version = store.append(blob_id, payload)
        else:
            version = store.write(blob_id, payload, 0)
        payloads[version] = payload
        store.sync(blob_id, version)
    return payloads


class TestCollectGarbage:
    def test_dropping_old_versions_reclaims_their_exclusive_pages(
        self, store, cluster, blob_id
    ):
        payloads = build_history(store, blob_id)
        latest = store.get_recent(blob_id)
        before = cluster.storage_bytes_used()
        report = collect_garbage(cluster, {blob_id: [latest]})
        after = cluster.storage_bytes_used()
        assert report.deleted_pages == 12          # 3 dropped versions x 4 pages
        assert report.reclaimed_bytes == before - after
        assert after == 4 * PAGE
        # The kept snapshot is still fully readable.
        assert store.read(blob_id, latest, 0, 4 * PAGE) == payloads[latest]

    def test_kept_versions_survive_collection(self, store, cluster, blob_id):
        payloads = build_history(store, blob_id)
        keep = [2, 4]
        collect_garbage(cluster, {blob_id: keep})
        for version in keep:
            assert store.read(blob_id, version, 0, 4 * PAGE) == payloads[version]

    def test_dry_run_deletes_nothing(self, store, cluster, blob_id):
        build_history(store, blob_id)
        before_pages = cluster.stored_page_count()
        report = collect_garbage(cluster, {blob_id: [store.get_recent(blob_id)]},
                                 dry_run=True)
        assert report.deleted_pages > 0
        assert cluster.stored_page_count() == before_pages

    def test_metadata_nodes_are_swept_too(self, store, cluster, blob_id):
        build_history(store, blob_id)
        nodes_before = cluster.metadata_node_count()
        report = collect_garbage(cluster, {blob_id: [store.get_recent(blob_id)]})
        assert report.deleted_nodes > 0
        assert cluster.metadata_node_count() == nodes_before - report.deleted_nodes
        assert cluster.metadata_node_count() == report.reachable_nodes

    def test_every_blob_must_be_listed(self, store, cluster):
        blob_a = store.create()
        blob_b = store.create()
        store.sync(blob_a, store.append(blob_a, make_payload(PAGE)))
        store.sync(blob_b, store.append(blob_b, make_payload(PAGE)))
        with pytest.raises(ConcurrencyError):
            collect_garbage(cluster, {blob_a: [1]})

    def test_unknown_blob_rejected(self, cluster):
        with pytest.raises(UnknownBlobError):
            collect_garbage(cluster, {"ghost": [1]})

    def test_branches_keep_shared_pages_alive(self, store, cluster, blob_id):
        base = make_payload(6 * PAGE)
        store.append(blob_id, base)
        store.sync(blob_id, 1)
        branch = store.branch(blob_id, 1)
        branch_version = store.write(branch, make_payload(PAGE, seed=3), 0)
        store.sync(branch, branch_version)
        # Drop every version of the origin but keep the branch: the shared
        # pages must survive because the branch still references them.
        collect_garbage(cluster, {blob_id: [], branch: [branch_version]})
        data = store.read(branch, branch_version, 0, 6 * PAGE)
        assert data[PAGE:] == base[PAGE:]

    def test_inflight_updates_block_collection(self, store, cluster, blob_id):
        store.sync(blob_id, store.append(blob_id, make_payload(PAGE)))
        cluster.version_manager.register_update(blob_id, PAGE, is_append=True)
        with pytest.raises(ConcurrencyError):
            collect_garbage(cluster, {blob_id: [1]})

    def test_dead_provider_is_skipped_not_fatal(self, store, cluster, blob_id):
        # Regression (PR 5): the sweep used to call page_ids()/delete_page()
        # on every provider, so one dead provider aborted the pass AFTER
        # pages had already been deleted elsewhere.  It must instead skip
        # the dead provider, report it, and stay idempotent.
        build_history(store, blob_id)
        latest = store.get_recent(blob_id)
        victim_id = cluster.provider_manager.provider_ids()[2]
        cluster.kill_data_provider(victim_id)
        report = collect_garbage(cluster, {blob_id: [latest]})
        assert report.skipped_providers == (victim_id,)
        assert report.deleted_pages > 0  # live providers were still swept
        # Idempotent: once the provider rejoins, a second pass reclaims
        # exactly what the dead one still held and skips nobody.  The
        # victim demonstrably held garbage (round-robin allocation spreads
        # every version over all providers), so the pass must delete > 0.
        cluster.revive_data_provider(victim_id)
        second = collect_garbage(cluster, {blob_id: [latest]})
        assert second.skipped_providers == ()
        assert second.deleted_pages > 0
        third = collect_garbage(cluster, {blob_id: [latest]})
        assert third.deleted_pages == 0 and third.reclaimed_bytes == 0
        assert cluster.storage_bytes_used() == 4 * PAGE

    def test_provider_dying_mid_sweep_is_skipped(self, store, cluster, blob_id):
        build_history(store, blob_id)
        latest = store.get_recent(blob_id)
        victim = next(
            provider
            for provider in cluster.provider_manager.providers()
            if provider.page_count()
        )
        original = victim.page_ids

        def dying_page_ids():
            victim.kill()
            return original()

        victim.page_ids = dying_page_ids
        report = collect_garbage(cluster, {blob_id: [latest]})
        assert victim.provider_id in report.skipped_providers


class TestClusterReport:
    def test_report_counts_match_cluster_state(self, store, cluster, blob_id):
        store.sync(blob_id, store.append(blob_id, make_payload(8 * PAGE)))
        store.sync(blob_id, store.write(blob_id, make_payload(PAGE, seed=2), 0))
        report = cluster_report(cluster)
        assert report.blobs == 1
        assert report.published_versions == 2
        assert report.pages_stored == 9
        assert report.bytes_stored == 9 * PAGE
        assert report.logical_bytes == 8 * PAGE
        assert report.physical_to_logical_ratio == pytest.approx(9 / 8)
        assert report.data_providers == 8
        assert report.metadata_buckets == 8
        assert report.page_load_imbalance >= 1.0

    def test_report_on_empty_cluster(self, cluster):
        report = cluster_report(cluster)
        assert report.blobs == 0
        assert report.bytes_stored == 0
        assert report.physical_to_logical_ratio == 0.0

    def test_format_is_human_readable(self, store, cluster, blob_id):
        store.sync(blob_id, store.append(blob_id, make_payload(2 * PAGE)))
        text = cluster_report(cluster).format()
        assert "cluster report" in text
        assert "data providers" in text
        assert "physical/logical" in text
