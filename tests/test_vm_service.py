"""Tests for the version-manager service subsystem (:mod:`repro.vm`).

Four concerns:

* the batch primitives — ``multi_register`` / ``multi_complete`` apply a
  whole batch under one lock round per blob, preserve per-blob ticket
  order, isolate per-request errors, and keep ticket numbering
  gapless-after-reap when an abort lands mid-batch;
* the group-commit machinery — concurrent submissions through the
  :class:`~repro.vm.TicketWindow` / :class:`~repro.vm.PublishQueue`
  coalesce into measurably fewer lock rounds than requests
  (``VMStats.register_batches < register_requests``) while remaining
  semantically identical to sequential calls;
* the client leases — GET_RECENT and published sizes are served from the
  :class:`~repro.vm.LeaseCache` with zero version-manager round trips once
  warm, publish notifications renew leases synchronously, the TTL and the
  entry budget are enforced, and a hypothesis property checks leased reads
  observe exactly what unleased reads observe across random
  write/branch/abort histories;
* the end-to-end accounting — ``ReadStats.vm_round_trips`` /
  ``WriteResult.vm_round_trips`` and the simulator's warm/cold
  ``vm_round_trips`` columns.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import BlobStore, Cluster
from repro.config import BlobSeerConfig
from repro.errors import (
    ConcurrencyError,
    InvalidRangeError,
    UnknownBlobError,
    VersionNotPublishedError,
)
from repro.sim.experiments import run_read_concurrency_experiment
from repro.version.records import CompletionNotice, RegisterRequest
from repro.version.version_manager import VersionManager
from repro.vm import LeaseCache, PublishQueue, TicketWindow, VersionManagerService

from .conftest import TEST_PAGE_SIZE, make_payload

PAGE = TEST_PAGE_SIZE


def make_service(**config_overrides) -> VersionManagerService:
    config = BlobSeerConfig(page_size=PAGE, **config_overrides)
    return VersionManagerService(VersionManager(config))


def run_threads(count, target):
    threads = [threading.Thread(target=target, args=(index,)) for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


# ------------------------------------------------------------ batch primitives
class TestMultiRegister:
    def test_batch_assigns_versions_in_submission_order(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob = vm.create_blob().blob_id
        requests = [
            RegisterRequest(blob_id=blob, size=(i + 1) * PAGE, is_append=True)
            for i in range(5)
        ]
        tickets = vm.multi_register(requests)
        assert [t.version for t in tickets] == [1, 2, 3, 4, 5]
        # Append offsets chain through the batch exactly like sequential
        # registrations would.
        position = 0
        for ticket, request in zip(tickets, requests):
            assert ticket.byte_offset == position
            position += request.size

    def test_batch_spanning_blobs_takes_each_blob_once(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob_a = vm.create_blob().blob_id
        blob_b = vm.create_blob().blob_id
        tickets = vm.multi_register(
            [
                RegisterRequest(blob_id=blob_a, size=PAGE, is_append=True),
                RegisterRequest(blob_id=blob_b, size=PAGE, is_append=True),
                RegisterRequest(blob_id=blob_a, size=PAGE, is_append=True),
            ]
        )
        assert [t.version for t in tickets] == [1, 1, 2]

    def test_bad_request_fails_alone_not_the_batch(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob = vm.create_blob().blob_id
        results = vm.multi_register(
            [
                RegisterRequest(blob_id=blob, size=PAGE, is_append=True),
                RegisterRequest(blob_id=blob, size=PAGE, offset=10 * PAGE),
                RegisterRequest(blob_id="nope", size=PAGE, is_append=True),
                RegisterRequest(blob_id=blob, size=0, is_append=True),
                RegisterRequest(blob_id=blob, size=PAGE, is_append=True),
            ]
        )
        assert results[0].version == 1
        assert isinstance(results[1], InvalidRangeError)
        assert isinstance(results[2], UnknownBlobError)
        assert isinstance(results[3], InvalidRangeError)
        # The survivors get consecutive versions: the failed slots consumed
        # nothing.
        assert results[4].version == 2


class TestMultiComplete:
    def test_batch_publishes_once_per_blob(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob = vm.create_blob().blob_id
        tickets = [vm.register_update(blob, PAGE, is_append=True) for _ in range(4)]
        results = vm.multi_complete(
            [
                CompletionNotice(blob_id=blob, version=t.version)
                for t in reversed(tickets)
            ]
        )
        assert results == [None, None, None, None]
        assert vm.get_recent(blob) == 4

    def test_mid_batch_abort_keeps_ticket_order_gapless_after_reap(self):
        """An abort filed between completions behaves like three sequential
        RPCs: the aborted version becomes a hole that GET_RECENT skips, and
        the next registration continues the gapless version sequence."""
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob = vm.create_blob().blob_id
        tickets = [vm.register_update(blob, PAGE, is_append=True) for _ in range(5)]
        notices = [
            CompletionNotice(blob_id=blob, version=tickets[0].version),
            CompletionNotice(blob_id=blob, version=tickets[1].version),
            CompletionNotice(blob_id=blob, version=tickets[2].version, kind="abort"),
            CompletionNotice(blob_id=blob, version=tickets[3].version),
            CompletionNotice(blob_id=blob, version=tickets[4].version),
        ]
        results = vm.multi_complete(notices)
        assert results == [None] * 5
        # All five published in one advance; the aborted v3 is a reaped hole.
        assert vm.get_recent(blob) == 5
        assert not vm.is_published(blob, 3)
        assert vm.is_published(blob, 2) and vm.is_published(blob, 4)
        # Numbering stays gapless: the next ticket is 6.
        assert vm.register_update(blob, PAGE, is_append=True).version == 6

    def test_per_notice_errors_do_not_poison_the_batch(self):
        vm = VersionManager(BlobSeerConfig(page_size=PAGE))
        blob = vm.create_blob().blob_id
        ticket = vm.register_update(blob, PAGE, is_append=True)
        results = vm.multi_complete(
            [
                CompletionNotice(blob_id=blob, version=99),
                CompletionNotice(blob_id=blob, version=ticket.version),
                CompletionNotice(blob_id="nope", version=1),
            ]
        )
        assert isinstance(results[0], ConcurrencyError)
        assert results[1] is None
        assert isinstance(results[2], UnknownBlobError)
        assert vm.get_recent(blob) == ticket.version


# ------------------------------------------------------------- group commit
class _GatedVersionManager(VersionManager):
    """A VersionManager whose first multi_register blocks until released —
    forcing concurrent submitters to pile up behind the window's leader so
    the second drain round provably batches them."""

    def __init__(self, config):
        super().__init__(config)
        self.gate = threading.Event()
        self.first_batch_entered = threading.Event()
        self._first = True

    def multi_register(self, requests):
        if self._first:
            self._first = False
            self.first_batch_entered.set()
            assert self.gate.wait(timeout=10)
        return super().multi_register(requests)


class TestGroupCommitWindow:
    def test_concurrent_registers_coalesce_into_fewer_batches(self):
        core = _GatedVersionManager(BlobSeerConfig(page_size=PAGE))
        service = VersionManagerService(core)
        blob = service.create_blob().blob_id
        writers = 8
        versions: list[int] = []
        lock = threading.Lock()
        started = threading.Barrier(writers + 1)

        def writer(_index):
            started.wait()
            ticket = service.register_update(blob, PAGE, is_append=True)
            with lock:
                versions.append(ticket.version)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(writers)
        ]
        for thread in threads:
            thread.start()
        started.wait()
        # Let the leader enter its (gated) first batch, give the followers
        # time to enqueue behind it, then open the gate: the leader's next
        # drain round picks them all up in ONE multi_register.
        assert core.first_batch_entered.wait(timeout=10)
        deadline = time.monotonic() + 5
        while True:
            stats = service.ticket_window_stats()
            if stats.requests + stats.pending >= writers:
                break
            if time.monotonic() > deadline:  # pragma: no cover - debug aid
                break
            time.sleep(0.005)
        core.gate.set()
        for thread in threads:
            thread.join()

        stats = service.vm_stats()
        assert sorted(versions) == list(range(1, writers + 1))
        assert stats.register_requests == writers
        # Measurably fewer ticket-issuance lock rounds than writers: the
        # gated first batch plus one (or a few) group-committed rounds.
        assert stats.register_batches < writers
        assert stats.register_max_batch > 1
        assert stats.lock_rounds_saved > 0

    def test_window_preserves_per_blob_order_and_raises_per_request(self):
        service = make_service()
        blob = service.create_blob().blob_id
        window_error: list[BaseException] = []

        def bad_writer(_index):
            try:
                service.register_update(blob, PAGE, offset=100 * PAGE)
            except InvalidRangeError as error:
                window_error.append(error)

        run_threads(4, bad_writer)
        assert len(window_error) == 4
        # The failed registrations consumed no versions.
        assert service.register_update(blob, PAGE, is_append=True).version == 1

    def test_publish_queue_coalesces_completions(self):
        service = make_service()
        blob = service.create_blob().blob_id
        writers = 6
        tickets = [
            service.register_update(blob, PAGE, is_append=True)
            for _ in range(writers)
        ]

        def completer(index):
            service.complete_update(blob, tickets[index].version)

        run_threads(writers, completer)
        stats = service.vm_stats()
        assert service.get_recent(blob) == writers
        assert stats.publish_requests == writers
        # Coalescing is opportunistic under real concurrency; it must never
        # exceed one lock round per notification.
        assert stats.publish_batches <= writers

    def test_window_and_queue_survive_a_stress_mix(self):
        service = make_service()
        blob = service.create_blob().blob_id
        per_thread = 20
        threads = 6

        def worker(index):
            for i in range(per_thread):
                ticket = service.register_update(blob, PAGE, is_append=True)
                if (ticket.version + index) % 7 == 0:
                    service.abort_update(blob, ticket.version, "chaos")
                else:
                    service.complete_update(blob, ticket.version)

        run_threads(threads, worker)
        total = per_thread * threads
        # Every version assigned exactly once, gap-free, all resolved.
        assert service.inflight_count(blob) == 0
        recent = service.get_recent(blob)
        assert recent <= total
        assert service.register_update(blob, PAGE, is_append=True).version == total + 1


class TestBatchingPrimitives:
    def test_ticket_window_submit_batch_counts_one_round(self):
        service = make_service()
        blob = service.create_blob().blob_id
        results = service.multi_register(
            [
                RegisterRequest(blob_id=blob, size=PAGE, is_append=True)
                for _ in range(5)
            ]
        )
        assert [t.version for t in results] == [1, 2, 3, 4, 5]
        stats = service.ticket_window_stats()
        assert (stats.requests, stats.batches, stats.max_batch) == (5, 1, 5)
        assert stats.mean_batch == 5.0

    def test_executor_level_failure_reaches_every_waiter(self):
        def explode(_batch):
            raise RuntimeError("backend down")

        window = TicketWindow(explode)
        with pytest.raises(RuntimeError, match="backend down"):
            window.register(RegisterRequest(blob_id="b", size=1, is_append=True))

    def test_publish_queue_notify_raises_per_notice(self):
        service = make_service()
        blob = service.create_blob().blob_id
        queue = PublishQueue(service.multi_complete)
        with pytest.raises(ConcurrencyError):
            queue.notify(CompletionNotice(blob_id=blob, version=3))


# ------------------------------------------------------------------- leases
class TestLeaseCache:
    def test_recent_hits_after_one_miss(self):
        service = make_service()
        lease = LeaseCache(service, ttl=60.0, max_entries=16)
        blob = service.create_blob().blob_id
        assert lease.recent(blob) == (0, 1)  # cold: one VM round trip
        assert lease.recent(blob) == (0, 0)  # leased: zero
        stats = lease.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_publish_notification_renews_the_lease(self):
        service = make_service()
        lease = LeaseCache(service, ttl=60.0, max_entries=16)
        blob = service.create_blob().blob_id
        assert lease.recent(blob) == (0, 1)
        ticket = service.register_update(blob, 3 * PAGE, is_append=True)
        service.complete_update(blob, ticket.version)
        # No round trip, yet the lease already observes the publication:
        # the publish notification renewed it synchronously.
        assert lease.recent(blob) == (ticket.version, 0)
        assert lease.stats().renewals >= 1
        # The notification also seeded the published-size fact.
        assert lease.published_size(blob, ticket.version) == (3 * PAGE, 0)

    def test_ttl_expiry_forces_revalidation(self):
        clock = [0.0]
        service = make_service()
        lease = LeaseCache(
            service, ttl=1.0, max_entries=16, clock=lambda: clock[0]
        )
        blob = service.create_blob().blob_id
        assert lease.recent(blob) == (0, 1)
        clock[0] = 0.5
        assert lease.recent(blob) == (0, 0)  # still fresh
        clock[0] = 2.0
        assert lease.recent(blob) == (0, 1)  # expired: revalidated
        # A backwards clock (the simulator resets virtual time) never
        # expires a lease.
        clock[0] = 0.0
        assert lease.recent(blob) == (0, 0)

    def test_entry_budget_evicts_lru(self):
        service = make_service()
        lease = LeaseCache(service, ttl=60.0, max_entries=2)
        blobs = [service.create_blob().blob_id for _ in range(4)]
        for blob in blobs:
            lease.recent(blob)
        stats = lease.stats()
        assert stats.leases <= 2
        assert stats.evictions > 0
        # The least recently used lease is gone: touching it costs a trip.
        assert lease.recent(blobs[0]) == (0, 1)

    def test_published_size_negative_answers_are_not_cached(self):
        service = make_service()
        lease = LeaseCache(service, ttl=60.0, max_entries=16)
        blob = service.create_blob().blob_id
        ticket = service.register_update(blob, PAGE, is_append=True)
        with pytest.raises(VersionNotPublishedError):
            lease.published_size(blob, ticket.version)
        service.complete_update(blob, ticket.version)
        # Published later: the earlier failure must not stick.
        size, _trips = lease.published_size(blob, ticket.version)
        assert size == PAGE

    def test_multi_check_read_batches_publication_checks(self):
        service = make_service()
        blob = service.create_blob().blob_id
        ticket = service.register_update(blob, 2 * PAGE, is_append=True)
        service.complete_update(blob, ticket.version)
        results = service.multi_check_read(
            [(blob, 0), (blob, ticket.version), (blob, 99), ("nope", 1)]
        )
        assert results[0] == 0
        assert results[1] == 2 * PAGE
        assert isinstance(results[2], VersionNotPublishedError)
        assert isinstance(results[3], UnknownBlobError)
        stats = service.vm_stats()
        assert stats.check_read_calls == 4
        assert stats.check_read_batches == 1

    def test_record_facts_are_cached(self):
        service = make_service()
        lease = LeaseCache(service, ttl=60.0, max_entries=16)
        blob = service.create_blob().blob_id
        record, trips = lease.record(blob)
        assert record.blob_id == blob and trips == 1
        record2, trips2 = lease.record(blob)
        assert record2 is record and trips2 == 0


# ----------------------------------------------------- store-level accounting
class TestStoreVmRoundTrips:
    def test_warm_repeated_reads_pay_zero_vm_round_trips(self, cluster):
        store = BlobStore(
            cluster,
            cache_metadata=False,
            version_leases=LeaseCache(cluster.version_manager, ttl=300.0),
        )
        blob_id = store.create()
        payload = make_payload(6 * PAGE)
        version = store.append(blob_id, payload)
        store.sync(blob_id, version)
        data_cold, cold = store.read_ex(blob_id, version, 0, len(payload))
        data_warm, warm = store.read_ex(blob_id, version, 0, len(payload))
        assert data_cold == data_warm == payload
        # The writer's ticket/publication already warmed the record fact and
        # the publish notification seeded the size, so even the first read
        # can be partially leased; the repeated read pays exactly zero.
        assert warm.vm_round_trips == 0
        assert cold.vm_round_trips <= 2

    def test_unleased_store_pays_two_vm_trips_per_read(self, cluster):
        store = BlobStore(cluster, cache_metadata=False, lease_versions=False)
        blob_id = store.create()
        version = store.append(blob_id, make_payload(2 * PAGE))
        store.sync(blob_id, version)
        for _ in range(2):
            _, stats = store.read_ex(blob_id, version, 0, 2 * PAGE)
            assert stats.vm_round_trips == 2  # record + combined check_read

    def test_leased_and_unleased_reads_agree(self, cluster):
        leased = BlobStore(
            cluster,
            cache_metadata=False,
            version_leases=LeaseCache(cluster.version_manager, ttl=300.0),
        )
        unleased = BlobStore(cluster, cache_metadata=False, lease_versions=False)
        blob_id = leased.create()
        version = leased.append(blob_id, make_payload(4 * PAGE))
        leased.sync(blob_id, version)
        assert leased.get_recent(blob_id) == unleased.get_recent(blob_id)
        assert leased.get_size(blob_id, version) == unleased.get_size(
            blob_id, version
        )
        assert leased.read(blob_id, version, 0, 4 * PAGE) == unleased.read(
            blob_id, version, 0, 4 * PAGE
        )

    def test_write_vm_round_trips_cover_register_and_complete(self, cluster):
        store = BlobStore(
            cluster,
            cache_metadata=False,
            version_leases=LeaseCache(cluster.version_manager, ttl=300.0),
        )
        blob_id = store.create()
        result = store.append_ex(blob_id, make_payload(2 * PAGE))
        # Cold record lookup + register + cold recency lookup + complete.
        assert 2 <= result.vm_round_trips <= 4
        result2 = store.append_ex(blob_id, make_payload(2 * PAGE))
        # The record fact and the lease are warm now (the first append's
        # publish notification renewed the lease): register + complete only.
        assert result2.vm_round_trips == 2


# ---------------------------------------------------------------- simulator
class TestSimVersionOffice:
    def test_publish_office_survives_benign_notice_errors(self):
        """A stale one-way completion notice (its version already reaped)
        must be dropped — not wedge the office's drain loop forever."""
        from repro.sim.deployment import SimDeployment

        dep = SimDeployment(num_provider_nodes=2, page_size=4096)
        blob = dep.create_blob()
        vm = dep.version_manager
        ticket = vm.register_update(blob, 4096, is_append=True)
        vm.abort_update(blob, ticket.version, "raced with the reaper")
        dep.publish_office.post_delayed(
            CompletionNotice(blob_id=blob, version=ticket.version), 0.001
        )
        dep.simulator.run()
        assert dep.publish_office.dropped == 1
        # The office keeps draining later notices.
        ticket2 = vm.register_update(blob, 4096, is_append=True)
        dep.publish_office.post(
            CompletionNotice(blob_id=blob, version=ticket2.version)
        )
        dep.simulator.run()
        assert vm.get_recent(blob) == ticket2.version


class TestSimulatedLeases:
    def test_warm_sim_reads_skip_the_version_manager(self):
        samples = run_read_concurrency_experiment(
            num_provider_nodes=8,
            page_size=4096,
            blob_bytes=64 * 4096 * 8,
            chunk_bytes=64 * 4096,
            reader_counts=[1, 4],
            measure_warm=True,
        )
        for sample in samples:
            assert sample.avg_vm_round_trips == 1.0  # cold: one check_read
            assert sample.warm_avg_vm_round_trips == 0.0  # leased
            assert sample.warm_avg_bandwidth_mbps >= sample.avg_bandwidth_mbps


# ------------------------------------------------------------- property test
history_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(1, 3 * PAGE), st.integers(0, 255)),
        st.tuples(st.just("write"), st.integers(1, 2 * PAGE), st.integers(0, 255)),
        st.tuples(st.just("branch"), st.integers(0, 8), st.integers(0, 255)),
        st.tuples(st.just("abort"), st.integers(1, 2 * PAGE), st.integers(0, 255)),
    ),
    min_size=1,
    max_size=12,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations=history_strategy)
def test_leased_reads_observe_unleased_state(operations):
    """Across random append/write/branch/abort histories, a leased client
    observes exactly the versions, sizes and bytes an unleased client does:
    publish notifications keep leases coherent, aborts leave holes both
    agree on."""
    cluster = Cluster.in_memory(
        num_data_providers=4, num_metadata_providers=4, page_size=PAGE
    )
    leased = BlobStore(
        cluster,
        cache_metadata=False,
        version_leases=LeaseCache(cluster.version_manager, ttl=300.0),
    )
    unleased = BlobStore(cluster, cache_metadata=False, lease_versions=False)

    blobs = [leased.create()]
    aborted: dict[str, list[int]] = {blobs[0]: []}
    for kind, size, seed in operations:
        blob_id = blobs[seed % len(blobs)]
        if kind == "append":
            version = leased.append(blob_id, make_payload(size, seed))
            leased.sync(blob_id, version)
        elif kind == "write":
            current = leased.get_size(blob_id, leased.get_recent(blob_id))
            offset = min(seed % (2 * PAGE), current)
            version = leased.write(blob_id, make_payload(size, seed), offset)
            leased.sync(blob_id, version)
        elif kind == "branch":
            recent = leased.get_recent(blob_id)
            if recent > 0:
                branched = leased.branch(blob_id, recent)
                blobs.append(branched)
                aborted[branched] = []
        else:  # abort: register then give up — a hole both clients skip
            service = cluster.version_manager
            ticket = service.register_update(blob_id, size, is_append=True)
            service.abort_update(blob_id, ticket.version, "property abort")
            aborted[blob_id].append(ticket.version)

        # After every operation the two clients agree on everything.
        for candidate in blobs:
            recent_l = leased.get_recent(candidate)
            recent_u = unleased.get_recent(candidate)
            assert recent_l == recent_u
            if recent_l > 0:
                size_l = leased.get_size(candidate, recent_l)
                assert size_l == unleased.get_size(candidate, recent_l)
                assert leased.read(candidate, recent_l, 0, size_l) == unleased.read(
                    candidate, recent_l, 0, size_l
                )
            for hole in aborted[candidate]:
                with pytest.raises(VersionNotPublishedError):
                    leased.get_size(candidate, hole)
                with pytest.raises(VersionNotPublishedError):
                    unleased.get_size(candidate, hole)
